// A wire frame in flight: owned bytes, or a shared immutable payload
// when one encode fans out to many destinations (broadcast) or is also
// referenced by the trace recorder.
//
// Frame is move-only — copying a frame body is always an explicit
// decision (Share() + Frame(shared)), never an accident of pass-by-
// value. Ownership rules are documented in docs/ARCHITECTURE.md
// ("Buffer ownership").
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <variant>

#include "common/buffer_pool.hpp"
#include "common/bytes.hpp"

namespace sbft {

class Frame {
 public:
  Frame() = default;
  explicit Frame(Bytes bytes) : rep_(std::move(bytes)) {}
  explicit Frame(std::shared_ptr<Bytes> shared) : rep_(std::move(shared)) {}

  Frame(Frame&&) noexcept = default;
  Frame& operator=(Frame&&) noexcept = default;
  Frame(const Frame&) = delete;
  Frame& operator=(const Frame&) = delete;

  [[nodiscard]] BytesView view() const {
    if (const auto* owned = std::get_if<Bytes>(&rep_)) return *owned;
    const auto& shared = std::get<std::shared_ptr<Bytes>>(rep_);
    return shared ? BytesView(*shared) : BytesView();
  }

  [[nodiscard]] std::size_t size() const { return view().size(); }
  [[nodiscard]] bool empty() const { return view().empty(); }

  /// Convert to shared representation in place and return the payload
  /// pointer; further Frame(shared) copies alias the same bytes. The
  /// payload must not be mutated once shared — fault injectors that
  /// corrupt frames must replace the whole Frame instead.
  const std::shared_ptr<Bytes>& Share() {
    if (auto* owned = std::get_if<Bytes>(&rep_)) {
      rep_ = std::make_shared<Bytes>(std::move(*owned));
    }
    return std::get<std::shared_ptr<Bytes>>(rep_);
  }

  /// Steal the backing storage if this frame exclusively owns it
  /// (owned representation only). Leaves the frame empty on success.
  ///
  /// Shared payloads are never stolen, even at use_count 1: use_count()
  /// is an unsynchronized observation, so "last owner moves the vector
  /// out" races the previous owner's final read on another thread (the
  /// broadcast fan-out case). The shared_ptr control block's final
  /// release IS properly synchronized, so shared payloads are reclaimed
  /// by letting the pointer die instead.
  bool TryTakeBytes(Bytes& out) {
    if (auto* owned = std::get_if<Bytes>(&rep_)) {
      if (owned->capacity() == 0) return false;
      out = std::move(*owned);
      return true;
    }
    return false;
  }

  /// Return the backing storage to `pool` when exclusively owned;
  /// no-op (and no allocation) for shared payloads — see TryTakeBytes.
  void Recycle(BufferPool& pool) {
    Bytes bytes;
    if (TryTakeBytes(bytes)) pool.Release(std::move(bytes));
  }

 private:
  std::variant<Bytes, std::shared_ptr<Bytes>> rep_;
};

}  // namespace sbft
