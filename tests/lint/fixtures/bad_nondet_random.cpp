// Fixture: draws entropy from the host. Must trip [nondet-random] —
// replay tokens cannot reproduce a random_device or rand() stream.
#include <cstdlib>
#include <random>

namespace sbft {

unsigned PickServer(unsigned n) {
  std::random_device entropy;
  return (entropy() + static_cast<unsigned>(rand())) % n;
}

}  // namespace sbft
