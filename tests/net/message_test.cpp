// Round-trip and garbage-hardening tests for the frame codec.
#include "net/message.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "labels/labeling_system.hpp"

namespace sbft {
namespace {

Timestamp MakeTs(Rng& rng, const LabelingSystem& system) {
  return Timestamp{RandomValidLabel(rng, system.params()),
                   static_cast<ClientId>(rng.NextBelow(100))};
}

// Decoded value-bearing messages borrow the frame, so the round-trip
// helper hands back the wire bytes together with the message; `msg` is
// only valid while the holder lives.
template <typename T>
struct Decoded {
  Bytes wire;
  T msg;
};

template <typename T>
Decoded<T> RoundTrip(const T& in) {
  Decoded<T> result;
  result.wire = EncodeMessage(Message(in));
  auto decoded = DecodeMessage(result.wire);
  EXPECT_TRUE(decoded.ok()) << (decoded.ok() ? "" : decoded.error());
  const T* out = std::get_if<T>(&decoded.value());
  EXPECT_NE(out, nullptr);
  if (out) result.msg = *out;
  return result;
}

TEST(MessageCodec, CoreMessagesRoundTrip) {
  Rng rng(51);
  LabelingSystem system(6);

  GetTsMsg get_ts{.op_label = 3};
  EXPECT_EQ(RoundTrip(get_ts).msg.op_label, 3u);

  TsReplyMsg ts_reply{MakeTs(rng, system), 7};
  auto ts_reply_out = RoundTrip(ts_reply);
  EXPECT_EQ(ts_reply_out.msg.ts, ts_reply.ts);
  EXPECT_EQ(ts_reply_out.msg.op_label, 7u);

  const Value write_val{1, 2, 3};
  WriteMsg write{write_val, MakeTs(rng, system), 9};
  auto write_out = RoundTrip(write);
  EXPECT_TRUE(SameBytes(write_out.msg.value, write.value));
  EXPECT_EQ(write_out.msg.ts, write.ts);

  WriteReplyMsg wr{.ack = true, .op_label = 2};
  EXPECT_TRUE(RoundTrip(wr).msg.ack);

  ReadMsg read{.label = 1};
  EXPECT_EQ(RoundTrip(read).msg.label, 1u);

  const Value reply_val{9, 9};
  const Value old_val1{1};
  const Value old_val2{2};
  ReplyMsg reply;
  reply.value = reply_val;
  reply.ts = MakeTs(rng, system);
  reply.old_vals = {{old_val1, MakeTs(rng, system)},
                    {old_val2, MakeTs(rng, system)}};
  reply.label = 4;
  auto reply_out = RoundTrip(reply);
  EXPECT_TRUE(SameBytes(reply_out.msg.value, reply.value));
  EXPECT_EQ(reply_out.msg.old_vals, reply.old_vals);

  CompleteReadMsg complete{.label = 2};
  EXPECT_EQ(RoundTrip(complete).msg.label, 2u);

  FlushMsg flush{.label = 5, .scope = OpScope::kWrite};
  auto flush_out = RoundTrip(flush);
  EXPECT_EQ(flush_out.msg.scope, OpScope::kWrite);

  FlushAckMsg flush_ack{.label = 5, .scope = OpScope::kRead};
  EXPECT_EQ(RoundTrip(flush_ack).msg.label, 5u);
}

TEST(MessageCodec, BaselineMessagesRoundTrip) {
  Rng rng(52);
  LabelingSystem system(4);
  UnboundedTs uts{123456789, 42};

  const Value v5{5};
  const Value v6{6};
  const Value v9{9};
  const Value v1{1};
  const Value v2{2};
  const Value v3{3};
  EXPECT_EQ(RoundTrip(AbdReadMsg{77}).msg.rid, 77u);
  auto abd_reply = RoundTrip(AbdReadReplyMsg{1, uts, v5});
  EXPECT_EQ(abd_reply.msg.ts, uts);
  EXPECT_TRUE(SameBytes(abd_reply.msg.value, v5));
  EXPECT_EQ(RoundTrip(AbdWriteMsg{2, uts, v6}).msg.ts, uts);
  EXPECT_EQ(RoundTrip(AbdWriteAckMsg{3}).msg.rid, 3u);
  EXPECT_EQ(RoundTrip(AbdGetTsMsg{4}).msg.rid, 4u);
  EXPECT_EQ(RoundTrip(AbdTsReplyMsg{5, uts}).msg.ts, uts);

  EXPECT_EQ(RoundTrip(BuGetTsMsg{6}).msg.rid, 6u);
  EXPECT_EQ(RoundTrip(BuTsReplyMsg{7, uts}).msg.ts, uts);
  EXPECT_TRUE(SameBytes(RoundTrip(BuWriteMsg{8, uts, v9}).msg.value, v9));
  EXPECT_EQ(RoundTrip(BuWriteAckMsg{9}).msg.rid, 9u);
  EXPECT_EQ(RoundTrip(BuReadMsg{10}).msg.rid, 10u);
  EXPECT_EQ(RoundTrip(BuReadReplyMsg{11, uts, v1}).msg.rid, 11u);

  Timestamp ts = MakeTs(rng, system);
  EXPECT_EQ(RoundTrip(NqGetTsMsg{12}).msg.rid, 12u);
  EXPECT_EQ(RoundTrip(NqTsReplyMsg{13, ts}).msg.ts, ts);
  EXPECT_EQ(RoundTrip(NqWriteMsg{14, ts, v2}).msg.ts, ts);
  EXPECT_EQ(RoundTrip(NqWriteAckMsg{15}).msg.rid, 15u);
  EXPECT_EQ(RoundTrip(NqReadMsg{16}).msg.rid, 16u);
  EXPECT_TRUE(
      SameBytes(RoundTrip(NqReadReplyMsg{17, ts, v3}).msg.value, v3));
}

TEST(MessageCodec, MuxEnvelopeRoundTrip) {
  const Bytes inner_wire = EncodeMessage(Message(ReadMsg{.label = 3}));
  MuxMsg mux;
  mux.register_id = 0xDEADBEEFCAFEF00Dull;
  mux.inner = inner_wire;
  Bytes wire = EncodeMessage(Message(mux));
  auto decoded = DecodeMessage(wire);
  ASSERT_TRUE(decoded.ok());
  const auto* out = std::get_if<MuxMsg>(&decoded.value());
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->register_id, mux.register_id);
  auto inner = DecodeMessage(out->inner);
  ASSERT_TRUE(inner.ok());
  EXPECT_NE(std::get_if<ReadMsg>(&inner.value()), nullptr);
}

TEST(MessageCodec, MuxNestingIsPossibleButBounded) {
  // Nested envelopes decode fine (the shim never nests, but garbage
  // might look nested); depth is naturally bounded by frame size.
  const Bytes raw{0xFF};
  MuxMsg innermost;
  innermost.register_id = 1;
  innermost.inner = raw;
  const Bytes innermost_wire = EncodeMessage(Message(innermost));
  MuxMsg outer;
  outer.register_id = 2;
  outer.inner = innermost_wire;
  auto decoded = DecodeMessage(EncodeMessage(Message(outer)));
  ASSERT_TRUE(decoded.ok());
}

TEST(MessageCodec, MuxBatchRoundTrip) {
  const Bytes inner_a = EncodeMessage(Message(ReadMsg{.label = 3}));
  const Bytes inner_b = EncodeMessage(Message(CompleteReadMsg{.label = 4}));
  MuxBatchMsg batch;
  batch.items = {MuxItem{7, inner_a}, MuxItem{9, inner_b}, MuxItem{7, inner_b}};
  const Bytes wire = EncodeMessage(Message(batch));
  auto decoded = DecodeMessage(wire);
  ASSERT_TRUE(decoded.ok());
  const auto* out = std::get_if<MuxBatchMsg>(&decoded.value());
  ASSERT_NE(out, nullptr);
  ASSERT_EQ(out->items.size(), 3u);
  EXPECT_EQ(out->items[0].register_id, 7u);
  EXPECT_EQ(out->items[1].register_id, 9u);
  auto inner = DecodeMessage(out->items[1].inner);
  ASSERT_TRUE(inner.ok());
  EXPECT_NE(std::get_if<CompleteReadMsg>(&inner.value()), nullptr);
}

TEST(MessageCodec, MuxBatchGarbageCountRejected) {
  // A batch frame whose count prefix promises more items than the frame
  // holds must fail cleanly, not over-read.
  const Bytes inner = EncodeMessage(Message(ReadMsg{.label = 1}));
  MuxBatchBuilder builder;
  builder.Add(1, inner);
  Bytes wire = builder.Take();
  wire[1] = 0xFF;  // count prefix low byte: claims 255 items
  EXPECT_FALSE(DecodeMessage(wire).ok());
}

TEST(MessageCodec, NodeFlushGarbageCountRejected) {
  // Same whole-frame rejection discipline as MuxBatch: a count prefix
  // promising more flush items than the frame holds fails cleanly.
  NodeFlushMsg flush;
  flush.items = {FlushItem{1, 2, OpScope::kRead}};
  Bytes wire = EncodeMessage(Message(flush));
  wire[1] = 0xFF;  // count prefix low byte: claims 255 items
  EXPECT_FALSE(DecodeMessage(wire).ok());
}

TEST(MessageCodec, NodeFlushAckTruncatedItemRejected) {
  // A malformed trailing element rejects the WHOLE frame — no partial
  // item distribution on the ack path.
  NodeFlushAckMsg ack;
  ack.items = {FlushItem{1, 2, OpScope::kRead},
               FlushItem{3, 4, OpScope::kWrite}};
  Bytes wire = EncodeMessage(Message(ack));
  wire.pop_back();  // truncate the last item's scope byte
  EXPECT_FALSE(DecodeMessage(wire).ok());
}

TEST(MessageCodec, EmptyFrameRejected) {
  EXPECT_FALSE(DecodeMessage(Bytes{}).ok());
}

TEST(MessageCodec, UnknownTagRejected) {
  Bytes frame{0xEE, 1, 2, 3};
  EXPECT_FALSE(DecodeMessage(frame).ok());
}

TEST(MessageCodec, TruncatedFrameRejected) {
  Bytes wire = EncodeMessage(Message(WriteMsg{Value{1, 2, 3},
                                              Timestamp{}, 1}));
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    Bytes truncated(wire.begin(),
                    wire.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(DecodeMessage(truncated).ok()) << "cut=" << cut;
  }
}

TEST(MessageCodec, TrailingBytesRejected) {
  Bytes wire = EncodeMessage(Message(ReadMsg{1}));
  wire.push_back(0xAB);
  EXPECT_FALSE(DecodeMessage(wire).ok());
}

// One populated instance of every wire variant, so hardening tests can
// exercise every decoder rather than a lucky subset. Value payloads are
// views, so the backing bytes live in function-local statics that
// outlive every returned Message.
std::vector<Message> AllVariantSamples(Rng& rng,
                                       const LabelingSystem& system) {
  static const Value kVal123{1, 2, 3};
  static const Value kVal45{4, 5};
  static const Value kVal1{1};
  static const Value kVal2{2};
  static const Value kVal3{3};
  static const Value kVal5{5};
  static const Value kVal6{6};
  static const Value kVal9{9};
  static const Bytes kMuxInner = EncodeMessage(Message(ReadMsg{.label = 9}));
  static const Bytes kBatchInnerA =
      EncodeMessage(Message(FlushMsg{4, OpScope::kWrite}));
  static const Bytes kBatchInnerB =
      EncodeMessage(Message(GetTsMsg{6}));
  const Timestamp ts = MakeTs(rng, system);
  const UnboundedTs uts{987654321, 17};
  ReplyMsg reply;
  reply.value = kVal45;
  reply.ts = MakeTs(rng, system);
  reply.old_vals = {{kVal6, MakeTs(rng, system)}};
  reply.label = 11;
  MuxMsg mux;
  mux.register_id = 0x1122334455667788ull;
  mux.inner = kMuxInner;
  MuxBatchMsg mux_batch;
  mux_batch.items = {MuxItem{1, kBatchInnerA}, MuxItem{2, kBatchInnerB}};
  NodeFlushMsg node_flush;
  node_flush.items = {FlushItem{1, 5, OpScope::kRead},
                      FlushItem{2, 6, OpScope::kWrite}};
  NodeFlushAckMsg node_flush_ack;
  node_flush_ack.items = node_flush.items;
  return {
      GetTsMsg{3},
      TsReplyMsg{ts, 7},
      WriteMsg{kVal123, ts, 9},
      WriteReplyMsg{true, 2},
      ReadMsg{1},
      reply,
      CompleteReadMsg{2},
      FlushMsg{5, OpScope::kWrite},
      FlushAckMsg{5, OpScope::kRead},
      AbdReadMsg{77},
      AbdReadReplyMsg{1, uts, kVal5},
      AbdWriteMsg{2, uts, kVal6},
      AbdWriteAckMsg{3},
      AbdGetTsMsg{4},
      AbdTsReplyMsg{5, uts},
      BuGetTsMsg{6},
      BuTsReplyMsg{7, uts},
      BuWriteMsg{8, uts, kVal9},
      BuWriteAckMsg{9},
      BuReadMsg{10},
      BuReadReplyMsg{11, uts, kVal1},
      NqGetTsMsg{12},
      NqTsReplyMsg{13, ts},
      NqWriteMsg{14, ts, kVal2},
      NqWriteAckMsg{15},
      NqReadMsg{16},
      NqReadReplyMsg{17, ts, kVal3},
      mux,
      mux_batch,
      node_flush,
      node_flush_ack,
  };
}

TEST(MessageCodec, SampleSetCoversEveryVariant) {
  Rng rng(54);
  LabelingSystem system(6);
  EXPECT_EQ(AllVariantSamples(rng, system).size(),
            std::variant_size_v<Message>);
}

TEST(MessageCodec, EveryVariantTruncationRejected) {
  Rng rng(54);
  LabelingSystem system(6);
  for (const Message& sample : AllVariantSamples(rng, system)) {
    const Bytes wire = EncodeMessage(sample);
    ASSERT_TRUE(DecodeMessage(wire).ok()) << MessageTypeName(sample);
    // Every strict prefix must produce a clean decode error: length
    // prefixes precede their data and decoders demand exact consumption,
    // so no truncation can re-validate.
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      Bytes truncated(wire.begin(),
                      wire.begin() + static_cast<std::ptrdiff_t>(cut));
      auto decoded = DecodeMessage(truncated);
      EXPECT_FALSE(decoded.ok())
          << MessageTypeName(sample) << " cut=" << cut;
    }
  }
}

TEST(MessageCodec, EveryVariantBitFlipsDecodeOrErrorCleanly) {
  // Flip each byte of each valid frame: the decoder must either reject
  // or return a structurally valid message, never misbehave. (ASan/UBSan
  // in CI give this test its teeth.)
  Rng rng(55);
  LabelingSystem system(6);
  for (const Message& sample : AllVariantSamples(rng, system)) {
    Bytes wire = EncodeMessage(sample);
    for (std::size_t i = 0; i < wire.size(); ++i) {
      const std::uint8_t saved = wire[i];
      wire[i] ^= static_cast<std::uint8_t>(1 + rng.NextBelow(255));
      auto decoded = DecodeMessage(wire);
      if (decoded.ok()) {
        EXPECT_FALSE(MessageTypeName(decoded.value()).empty());
      }
      wire[i] = saved;
    }
  }
}

TEST(MessageCodec, TypedGarbagePayloadsNeverCrash) {
  // Valid type byte, random payload: the adversarial shape garbage
  // injection actually produces (the type byte survives, fields don't).
  Rng rng(56);
  LabelingSystem system(6);
  const auto samples = AllVariantSamples(rng, system);
  for (const Message& sample : samples) {
    const std::uint8_t type_byte = EncodeMessage(sample)[0];
    for (int i = 0; i < 64; ++i) {
      Bytes frame{type_byte};
      const Bytes payload = RandomBytes(rng, rng.NextBelow(120));
      frame.insert(frame.end(), payload.begin(), payload.end());
      (void)DecodeMessage(frame);  // must not crash; outcome is free
    }
  }
}

TEST(MessageCodec, FuzzGarbageFramesNeverCrash) {
  Rng rng(53);
  int decoded_ok = 0;
  for (int i = 0; i < 5000; ++i) {
    Bytes garbage = RandomBytes(rng, rng.NextBelow(80));
    auto result = DecodeMessage(garbage);
    if (result.ok()) ++decoded_ok;  // structurally valid garbage is fine
  }
  // Overwhelming majority of random frames must be rejected outright.
  EXPECT_LT(decoded_ok, 500);
}

TEST(MessageCodec, TypeNamesAreStable) {
  EXPECT_EQ(MessageTypeName(Message(GetTsMsg{})), "GET_TS");
  EXPECT_EQ(MessageTypeName(Message(WriteReplyMsg{.ack = true})), "ACK");
  EXPECT_EQ(MessageTypeName(Message(WriteReplyMsg{.ack = false})), "NACK");
  EXPECT_EQ(MessageTypeName(Message(FlushMsg{})), "FLUSH");
  EXPECT_EQ(MessageTypeName(Message(NqReadReplyMsg{})), "NQ_READ_REPLY");
}

}  // namespace
}  // namespace sbft
