// Pipelined client multiplexing: many logical clients, each its own
// register behind the mux envelope, share one client node and one TCP
// connection per server. Operations of different logical clients
// interleave freely on the wire; each logical client must still see
// ITS operations complete in issue order with read-your-writes.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/register_cluster.hpp"

namespace sbft {
namespace {

Value Val(const std::string& text) { return Value(text.begin(), text.end()); }

// Drives `kClients` logical clients, each running `kPairs` write+read
// pairs as an async closed loop (next op issued from the completion
// callback). All callbacks run on the mux client node's thread.
TEST(MuxPipeline, SixtyFourClientsPreservePerClientOrdering) {
  constexpr std::size_t kClients = 64;
  constexpr int kPairs = 5;

  RegisterCluster::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.use_tcp = true;
  options.multiplex = true;
  options.n_clients = kClients;
  RegisterCluster cluster(std::move(options));
  ASSERT_TRUE(cluster.multiplexed());
  cluster.Start();

  struct PerClient {
    std::vector<std::string> reads;  // value seen by read i
    int completed_pairs = 0;
  };
  std::vector<PerClient> state(kClients);
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t done_clients = 0;
  std::atomic<int> failures{0};

  // One mutually recursive pair of injectors per logical client.
  std::function<void(std::size_t, int)> inject_write =
      [&](std::size_t c, int i) {
        const std::string text =
            "c" + std::to_string(c) + "#" + std::to_string(i);
        cluster.AsyncWrite(c, Val(text), [&, c, i,
                                          text](const WriteOutcome& write) {
          if (write.status != OpStatus::kOk) failures.fetch_add(1);
          cluster.AsyncRead(c, [&, c, i, text](const ReadOutcome& read) {
            if (read.status != OpStatus::kOk) failures.fetch_add(1);
            {
              std::lock_guard<std::mutex> lock(mutex);
              state[c].reads.emplace_back(read.value.begin(),
                                          read.value.end());
              state[c].completed_pairs = i + 1;
            }
            if (i + 1 < kPairs) {
              inject_write(c, i + 1);
              return;
            }
            std::lock_guard<std::mutex> lock(mutex);
            ++done_clients;
            done_cv.notify_one();
          });
        });
      };
  for (std::size_t c = 0; c < kClients; ++c) inject_write(c, 0);

  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(done_cv.wait_for(lock, std::chrono::seconds(60), [&] {
      return done_clients == kClients;
    })) << "pipelined clients did not finish";
  }
  cluster.Stop();

  EXPECT_EQ(failures.load(), 0);
  for (std::size_t c = 0; c < kClients; ++c) {
    ASSERT_EQ(state[c].completed_pairs, kPairs) << "client " << c;
    ASSERT_EQ(state[c].reads.size(), static_cast<std::size_t>(kPairs));
    for (int i = 0; i < kPairs; ++i) {
      // Single writer per register + closed loop: read i follows write
      // i with nothing in between, so it must return exactly value i —
      // this is the per-client ordering guarantee across the shared
      // connection.
      EXPECT_EQ(state[c].reads[static_cast<std::size_t>(i)],
                "c" + std::to_string(c) + "#" + std::to_string(i))
          << "client " << c << " op " << i;
    }
  }
}

// The mailbox transport must give the identical guarantee (the mux
// layer, not the socket, provides per-client ordering).
TEST(MuxPipeline, InprocMultiplexedClientsReadTheirWrites) {
  constexpr std::size_t kClients = 16;
  RegisterCluster::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.multiplex = true;
  options.n_clients = kClients;
  RegisterCluster cluster(std::move(options));
  cluster.Start();
  for (std::size_t c = 0; c < kClients; ++c) {
    const Value value = Val("v" + std::to_string(c));
    ASSERT_EQ(cluster.Write(c, value).status, OpStatus::kOk);
  }
  for (std::size_t c = 0; c < kClients; ++c) {
    auto read = cluster.Read(c);
    ASSERT_EQ(read.status, OpStatus::kOk);
    EXPECT_EQ(read.value, Val("v" + std::to_string(c))) << c;
  }
  cluster.Stop();
}

}  // namespace
}  // namespace sbft
