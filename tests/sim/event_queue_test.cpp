// Model tests for the calendar event queue: every pop sequence must
// match what a reference heap ordered by (time, seq) would produce,
// including far-future overflow traffic, out-of-order seq re-pushes,
// drain-and-refill surgery and the below-cursor Rebuild safety net.
// The sim's trace determinism (pinned by the SBFZ1 corpus hashes)
// rests entirely on this ordering contract.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "sim/types.hpp"

namespace sbft {
namespace {

struct TestEvent {
  VirtualTime time = 0;
  std::uint64_t seq = 0;
  int payload = 0;
};

struct ReferenceOrder {
  bool operator()(const TestEvent& a, const TestEvent& b) const {
    // std::priority_queue is a max-heap; invert for min-first.
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  }
};

using ReferenceQueue =
    std::priority_queue<TestEvent, std::vector<TestEvent>, ReferenceOrder>;

TEST(CalendarQueue, PopsInTimeSeqOrder) {
  CalendarQueue<TestEvent> queue;
  Rng rng(11);
  std::uint64_t seq = 0;
  for (int i = 0; i < 1000; ++i) {
    queue.push({rng.NextBelow(64), seq++, i});
  }
  VirtualTime last_time = 0;
  std::uint64_t last_seq = 0;
  bool first = true;
  while (!queue.empty()) {
    const TestEvent event = queue.pop();
    if (!first) {
      ASSERT_TRUE(event.time > last_time ||
                  (event.time == last_time && event.seq > last_seq));
    }
    first = false;
    last_time = event.time;
    last_seq = event.seq;
  }
}

TEST(CalendarQueue, MatchesReferenceUnderInterleavedPushPop) {
  CalendarQueue<TestEvent> queue;
  ReferenceQueue reference;
  Rng rng(42);
  std::uint64_t seq = 0;
  VirtualTime now = 0;  // monotone lower bound for new pushes, like the sim
  for (int step = 0; step < 5000; ++step) {
    const bool do_push = queue.empty() || rng.NextBelow(100) < 55;
    if (do_push) {
      // Mix of near-future (bucket ring) and far-future (overflow lane)
      // delays, the latter well past the 512-tick window.
      const VirtualTime delay = rng.NextBelow(100) < 90
                                    ? rng.NextBelow(32)
                                    : 512 + rng.NextBelow(4096);
      const TestEvent event{now + delay, seq++, step};
      queue.push(event);
      reference.push(event);
    } else {
      ASSERT_FALSE(reference.empty());
      const TestEvent expected = reference.top();
      reference.pop();
      const TestEvent actual = queue.pop();
      ASSERT_EQ(actual.time, expected.time);
      ASSERT_EQ(actual.seq, expected.seq);
      ASSERT_EQ(actual.payload, expected.payload);
      now = actual.time;
    }
  }
  while (!queue.empty()) {
    const TestEvent expected = reference.top();
    reference.pop();
    const TestEvent actual = queue.pop();
    ASSERT_EQ(actual.time, expected.time);
    ASSERT_EQ(actual.seq, expected.seq);
  }
  EXPECT_TRUE(reference.empty());
}

TEST(CalendarQueue, FarFutureOverflowMigratesInOrder) {
  CalendarQueue<TestEvent> queue;
  // All events beyond the bucket window, pushed in scrambled time order.
  const VirtualTime times[] = {9000, 600, 70000, 5000, 600, 1024};
  std::uint64_t seq = 0;
  for (const VirtualTime t : times) queue.push({t, seq++, 0});
  std::vector<VirtualTime> popped;
  while (!queue.empty()) popped.push_back(queue.pop().time);
  const std::vector<VirtualTime> expected = {600, 600, 1024, 5000, 9000,
                                             70000};
  EXPECT_EQ(popped, expected);
}

TEST(CalendarQueue, SeqBreaksTiesAtOneTime) {
  CalendarQueue<TestEvent> queue;
  queue.push({5, 30, 0});
  queue.push({5, 10, 1});
  queue.push({5, 20, 2});
  EXPECT_EQ(queue.pop().seq, 10u);
  EXPECT_EQ(queue.pop().seq, 20u);
  EXPECT_EQ(queue.pop().seq, 30u);
}

TEST(CalendarQueue, TakeAllReturnsSortedAndEmpties) {
  CalendarQueue<TestEvent> queue;
  Rng rng(7);
  std::uint64_t seq = 0;
  for (int i = 0; i < 200; ++i) {
    queue.push({rng.NextBelow(2000), seq++, i});
  }
  const std::vector<TestEvent> all = queue.TakeAll();
  ASSERT_EQ(all.size(), 200u);
  EXPECT_TRUE(queue.empty());
  for (std::size_t i = 1; i < all.size(); ++i) {
    ASSERT_TRUE(all[i - 1].time < all[i].time ||
                (all[i - 1].time == all[i].time &&
                 all[i - 1].seq < all[i].seq));
  }
  // Drain-and-refill: re-pushing a subset must keep working (the cursor
  // stays put across TakeAll).
  for (std::size_t i = 0; i < all.size(); i += 2) queue.push(all[i]);
  EXPECT_EQ(queue.size(), 100u);
  VirtualTime last = 0;
  while (!queue.empty()) {
    const VirtualTime t = queue.pop().time;
    ASSERT_GE(t, last);
    last = t;
  }
}

TEST(CalendarQueue, RebuildOnPushBelowCursor) {
  CalendarQueue<TestEvent> queue;
  std::uint64_t seq = 0;
  for (VirtualTime t = 100; t < 110; ++t) queue.push({t, seq++, 0});
  ASSERT_EQ(queue.pop().time, 100u);
  ASSERT_EQ(queue.pop().time, 101u);  // cursor now at 101
  // A push below the cursor is external misuse the queue must survive
  // (drain-and-refill callers re-pushing history): Rebuild rebases.
  queue.push({50, seq++, 0});
  queue.push({60, seq++, 0});
  std::vector<VirtualTime> popped;
  while (!queue.empty()) popped.push_back(queue.pop().time);
  const std::vector<VirtualTime> expected = {50,  60,  102, 103, 104,
                                             105, 106, 107, 108, 109};
  EXPECT_EQ(popped, expected);
}

TEST(CalendarQueue, EmptyQueueRebasesWindowOnPush) {
  CalendarQueue<TestEvent> queue;
  queue.push({1000, 1, 0});
  EXPECT_EQ(queue.pop().time, 1000u);
  // Queue drained at cursor 1000; an earlier push must still work.
  queue.push({3, 2, 7});
  ASSERT_EQ(queue.size(), 1u);
  const TestEvent event = queue.pop();
  EXPECT_EQ(event.time, 3u);
  EXPECT_EQ(event.payload, 7);
}

}  // namespace
}  // namespace sbft
