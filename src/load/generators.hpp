// Deterministic workload-shape generators for the open-loop load
// engine: Poisson arrival processes (offered load), Zipf key popularity
// (hot-key contention over mux registers), and piecewise-constant rate
// ramps (flash crowds).
//
// Everything here is a pure function of an Rng stream: the same seed
// produces the same arrival times, keys, and op kinds on every machine.
// That determinism is what makes an open-loop schedule a replayable
// artifact (tests/load/generators_test.cpp pins it down) — the only
// nondeterminism in a load run is how the system under test keeps up.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace sbft::load {

/// Poisson arrival process: exponentially distributed inter-arrival
/// gaps at `rate_per_sec` events/second, reported as absolute
/// microsecond offsets from 0. Deterministic per Rng state.
class PoissonProcess {
 public:
  PoissonProcess(double rate_per_sec, Rng rng);

  /// Absolute time of the next arrival, in microseconds. Monotonically
  /// non-decreasing.
  std::uint64_t NextArrivalUs();

  /// Change the rate mid-stream (flash-crowd ramps). The next gap is
  /// drawn at the new rate; past arrivals are unaffected.
  void SetRate(double rate_per_sec);

  /// Reset the process clock to `us`, discarding any partial gap. At a
  /// phase boundary this is statistically exact: the exponential is
  /// memoryless, so the residual wait past the boundary at the new
  /// rate is a fresh draw.
  void ResetTo(std::uint64_t us);

  [[nodiscard]] double rate_per_sec() const { return rate_per_sec_; }

 private:
  double rate_per_sec_;
  double now_us_ = 0.0;
  Rng rng_;
};

/// Zipf(s) popularity over ranks 0..n-1: P(rank k) proportional to
/// 1/(k+1)^s. s = 0 degenerates to the uniform distribution. Sampling
/// is a binary search over the precomputed CDF — O(log n) per draw,
/// deterministic per Rng state.
class ZipfGenerator {
 public:
  ZipfGenerator(std::size_t n, double skew, Rng rng);

  /// Draw a rank in [0, n).
  std::size_t Next();

  [[nodiscard]] std::size_t n() const { return cdf_.size(); }
  [[nodiscard]] double skew() const { return skew_; }

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k), cdf_.back() == 1
  double skew_;
  Rng rng_;
};

/// One phase of a piecewise-constant offered-load profile.
struct RatePhase {
  std::uint64_t duration_us = 0;
  double rate_per_sec = 0.0;
};

/// Total duration of a profile.
std::uint64_t ProfileDurationUs(const std::vector<RatePhase>& phases);

}  // namespace sbft::load
