// Twin of bad_address_as_value.cpp: identity is an explicit sequence
// number assigned deterministically. Must pass clean.
#include <cstdint>

namespace sbft {

struct Op {
  int kind;
  std::uint64_t seq;
};

std::uint64_t TraceKey(const Op& op) { return op.seq; }

}  // namespace sbft
