// Multi-register multiplexing: independent registers over one server
// population, concurrent per-register operations, isolation, bounded
// tables, and full fault tolerance per register.
#include "core/mux.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "load/stabilization.hpp"
#include "sim/world.hpp"
#include "spec/history.hpp"

namespace sbft {
namespace {

Value Val(const std::string& text) { return Value(text.begin(), text.end()); }

struct MuxRig {
  explicit MuxRig(std::uint64_t seed, std::size_t max_registers = 1024,
                  bool one_byzantine = false, MuxBatchOptions batch = {}) {
    World::Options world_options;
    world_options.seed = seed;
    world = std::make_unique<World>(std::move(world_options));
    config = ProtocolConfig::ForServers(6);
    for (std::size_t i = 0; i < 6; ++i) {
      MuxServer::ServerFactory factory;
      if (one_byzantine && i == 2) {
        factory = [this, i](RegisterId id) {
          return MakeByzantineServer(ByzantineStrategy::kStaleReplay,
                                     config, i, id);
        };
      }
      auto server = std::make_unique<MuxServer>(config, i, max_registers,
                                                std::move(factory));
      servers.push_back(server.get());
      server_ids.push_back(world->AddNode(std::move(server)));
    }
    auto client_owner = std::make_unique<MuxClient>(config, server_ids, 100,
                                                    max_registers, batch);
    client = client_owner.get();
    client_id = world->AddNode(std::move(client_owner));
    world->RunUntil([] { return true; }, 0);
  }

  bool Put(const std::string& key, const Value& value) {
    bool done = false, ok = false;
    client->Put(key, value, [&](const WriteOutcome& outcome) {
      ok = outcome.status == OpStatus::kOk;
      done = true;
    });
    world->RunUntil([&] { return done; }, 1'000'000);
    return done && ok;
  }
  ReadOutcome Get(const std::string& key) {
    ReadOutcome result;
    bool done = false;
    client->Get(key, [&](const ReadOutcome& outcome) {
      result = outcome;
      done = true;
    });
    world->RunUntil([&] { return done; }, 1'000'000);
    return result;
  }

  std::unique_ptr<World> world;
  ProtocolConfig config;
  std::vector<MuxServer*> servers;
  std::vector<NodeId> server_ids;
  MuxClient* client = nullptr;
  NodeId client_id = 0;
};

TEST(Mux, PutGetSingleKey) {
  MuxRig rig(1);
  ASSERT_TRUE(rig.Put("alpha", Val("1")));
  auto got = rig.Get("alpha");
  ASSERT_EQ(got.status, OpStatus::kOk);
  EXPECT_EQ(got.value, Val("1"));
}

TEST(Mux, KeysAreIsolated) {
  MuxRig rig(2);
  ASSERT_TRUE(rig.Put("a", Val("va")));
  ASSERT_TRUE(rig.Put("b", Val("vb")));
  ASSERT_TRUE(rig.Put("c", Val("vc")));
  EXPECT_EQ(rig.Get("a").value, Val("va"));
  EXPECT_EQ(rig.Get("b").value, Val("vb"));
  EXPECT_EQ(rig.Get("c").value, Val("vc"));
  // Overwriting one key leaves the others untouched.
  ASSERT_TRUE(rig.Put("b", Val("vb2")));
  EXPECT_EQ(rig.Get("a").value, Val("va"));
  EXPECT_EQ(rig.Get("b").value, Val("vb2"));
  EXPECT_EQ(rig.Get("c").value, Val("vc"));
}

TEST(Mux, ConcurrentOpsOnDistinctKeys) {
  // Operations on different registers proceed in parallel through one
  // client automaton.
  MuxRig rig(3);
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    rig.client->Put("key" + std::to_string(i),
                    Val("v" + std::to_string(i)),
                    [&](const WriteOutcome& outcome) {
                      EXPECT_EQ(outcome.status, OpStatus::kOk);
                      ++done;
                    });
  }
  ASSERT_TRUE(rig.world->RunUntil([&] { return done == 5; }, 2'000'000));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(rig.Get("key" + std::to_string(i)).value,
              Val("v" + std::to_string(i)));
  }
}

TEST(Mux, ByzantinePerRegisterMasked) {
  MuxRig rig(4, 1024, /*one_byzantine=*/true);
  for (int i = 0; i < 5; ++i) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(rig.Put(key, Val("val" + std::to_string(i))));
    auto got = rig.Get(key);
    ASSERT_EQ(got.status, OpStatus::kOk);
    EXPECT_EQ(got.value, Val("val" + std::to_string(i)));
  }
}

TEST(Mux, ServerTableBoundedByLru) {
  MuxRig rig(5, /*max_registers=*/4);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(rig.Put("key" + std::to_string(i), Val("x")));
  }
  for (MuxServer* server : rig.servers) {
    EXPECT_LE(server->register_count(), 4u);
  }
  // Hot keys survive; a long-evicted key reads as unwritten/aborted or
  // fresh initial state — equivalent to a transient fault on that
  // register, never a wrong certified value.
  ASSERT_TRUE(rig.Put("hot", Val("still-here")));
  EXPECT_EQ(rig.Get("hot").value, Val("still-here"));
  auto cold = rig.Get("key0");
  if (cold.status == OpStatus::kOk) {
    EXPECT_NE(cold.value, Val("wrong"));
  }
}

TEST(Mux, TransientCorruptionHealsPerRegister) {
  MuxRig rig(6);
  ASSERT_TRUE(rig.Put("k", Val("before")));
  for (std::size_t i = 0; i < 6; ++i) {
    rig.world->CorruptNode(rig.server_ids[i]);
  }
  ASSERT_TRUE(rig.Put("k", Val("after")));
  for (int i = 0; i < 3; ++i) {
    auto got = rig.Get("k");
    ASSERT_EQ(got.status, OpStatus::kOk);
    EXPECT_EQ(got.value, Val("after"));
  }
}

TEST(Mux, BareFramesIgnored) {
  MuxRig rig(7);
  // Un-wrapped protocol frames and garbage at a mux server: dropped.
  rig.world->InjectGarbageFrames(rig.client_id, rig.server_ids[0], 20);
  rig.world->Run();
  ASSERT_TRUE(rig.Put("k", Val("fine")));
  EXPECT_EQ(rig.Get("k").value, Val("fine"));
}

TEST(Mux, RegisterIdOfIsStable) {
  EXPECT_EQ(RegisterIdOf("users/42"), RegisterIdOf("users/42"));
  EXPECT_NE(RegisterIdOf("users/42"), RegisterIdOf("users/43"));
}

// ---- Protocol-round batching -----------------------------------------

MuxBatchOptions Batch(std::size_t max_ops, VirtualTime max_delay = 50) {
  MuxBatchOptions batch;
  batch.max_ops = max_ops;
  batch.max_delay = max_delay;
  return batch;
}

TEST(MuxBatch, LoneOpFlushedByTimer) {
  // A single op never reaches max_ops; the max_delay timer must push
  // its round out (latency bound of the batch window).
  MuxRig rig(21, 1024, false, Batch(/*max_ops=*/8, /*max_delay=*/50));
  ASSERT_TRUE(rig.client->batching());
  ASSERT_TRUE(rig.Put("alpha", Val("1")));
  auto got = rig.Get("alpha");
  ASSERT_EQ(got.status, OpStatus::kOk);
  EXPECT_EQ(got.value, Val("1"));
}

TEST(MuxBatch, OpsQueueUntilWindowFills) {
  MuxRig rig(22, 1024, false, Batch(/*max_ops=*/4, /*max_delay=*/1'000'000));
  int done = 0;
  auto on_write = [&](const WriteOutcome& outcome) {
    EXPECT_EQ(outcome.status, OpStatus::kOk);
    ++done;
  };
  // Below max_ops, ops wait in the pending queue (the long max_delay
  // keeps the timer from racing the assertion).
  for (int i = 0; i < 3; ++i) {
    rig.client->Put("key" + std::to_string(i), Val("v"), on_write);
  }
  EXPECT_EQ(rig.client->pending_ops(), 3u);
  // The fourth submission fills the window: the whole batch launches as
  // one shared round.
  rig.client->Put("key3", Val("v"), on_write);
  EXPECT_EQ(rig.client->pending_ops(), 0u);
  ASSERT_TRUE(rig.world->RunUntil([&] { return done == 4; }, 2'000'000));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rig.Get("key" + std::to_string(i)).value, Val("v"));
  }
}

TEST(MuxBatch, ConcurrentOpsOnDistinctKeysBatched) {
  MuxRig rig(23, 1024, false, Batch(/*max_ops=*/8));
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    rig.client->Put("key" + std::to_string(i),
                    Val("v" + std::to_string(i)),
                    [&](const WriteOutcome& outcome) {
                      EXPECT_EQ(outcome.status, OpStatus::kOk);
                      ++done;
                    });
  }
  ASSERT_TRUE(rig.world->RunUntil([&] { return done == 8; }, 2'000'000));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(rig.Get("key" + std::to_string(i)).value,
              Val("v" + std::to_string(i)));
  }
}

TEST(MuxBatch, ByzantinePerRegisterMaskedBatched) {
  MuxRig rig(24, 1024, /*one_byzantine=*/true, Batch(/*max_ops=*/4));
  for (int i = 0; i < 5; ++i) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(rig.Put(key, Val("val" + std::to_string(i))));
    auto got = rig.Get(key);
    ASSERT_EQ(got.status, OpStatus::kOk);
    EXPECT_EQ(got.value, Val("val" + std::to_string(i)));
  }
}

// Runs a fixed concurrent workload (writes then reads over 6 keys) on a
// batched rig and returns (read values, final virtual time).
std::pair<std::vector<Value>, VirtualTime> BatchedRun(std::uint64_t seed) {
  MuxRig rig(seed, 1024, false, Batch(/*max_ops=*/4, /*max_delay=*/50));
  int writes = 0;
  for (int i = 0; i < 6; ++i) {
    rig.client->Put("key" + std::to_string(i),
                    Val("w" + std::to_string(i)),
                    [&](const WriteOutcome&) { ++writes; });
  }
  EXPECT_TRUE(rig.world->RunUntil([&] { return writes == 6; }, 2'000'000));
  std::vector<Value> values(6);
  int reads = 0;
  for (int i = 0; i < 6; ++i) {
    rig.client->Get("key" + std::to_string(i),
                    [&, i](const ReadOutcome& outcome) {
                      values[i] = outcome.value;
                      ++reads;
                    });
  }
  EXPECT_TRUE(rig.world->RunUntil([&] { return reads == 6; }, 2'000'000));
  return {values, rig.world->now()};
}

TEST(MuxBatch, BatchedRunsAreDeterministic) {
  // Same seed, same batch window -> bit-identical outcome, including
  // the virtual clock: the collector flushes per destination in
  // ascending NodeId order, so batching adds no scheduling ambiguity.
  auto [values_a, now_a] = BatchedRun(25);
  auto [values_b, now_b] = BatchedRun(25);
  EXPECT_EQ(values_a, values_b);
  EXPECT_EQ(now_a, now_b);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(values_a[i], Val("w" + std::to_string(i)));
  }
}

TEST(MuxBatch, BatchedHistoryIsRegularPerKey) {
  // Record a concurrent batched workload as a History and run the
  // per-key regular-register checker over it: frame-level coalescing
  // must not reorder any single register's protocol phases.
  MuxRig rig(26, 1024, false, Batch(/*max_ops=*/4, /*max_delay=*/50));
  constexpr int kKeys = 4;
  constexpr int kRoundsPerKey = 3;
  History history;
  int outstanding = 0;

  // Closed loop per key: write then read, repeated; keys run
  // concurrently so their rounds share batch frames.
  struct KeyDriver {
    int round = 0;
    bool reading = false;
  };
  std::vector<KeyDriver> drivers(kKeys);
  std::function<void(int)> step = [&](int key) {
    KeyDriver& driver = drivers[key];
    if (driver.round == kRoundsPerKey) {
      --outstanding;
      return;
    }
    const std::string name = "key" + std::to_string(key);
    OpRecord rec;
    rec.client = static_cast<std::uint32_t>(key);
    rec.invoked_at = rig.world->now();
    if (!driver.reading) {
      driver.reading = true;
      const Value value =
          Val("k" + std::to_string(key) + "r" + std::to_string(driver.round));
      rec.kind = OpRecord::Kind::kWrite;
      rec.value = value;
      rig.client->Put(name, value, [&, key, rec](const WriteOutcome& out) {
        OpRecord done = rec;
        done.returned_at = rig.world->now();
        done.result = out.status == OpStatus::kOk ? OpRecord::Result::kOk
                                                  : OpRecord::Result::kFailed;
        history.Add(std::move(done));
        step(key);
      });
    } else {
      driver.reading = false;
      ++driver.round;
      rec.kind = OpRecord::Kind::kRead;
      rig.client->Get(name, [&, key, rec](const ReadOutcome& out) {
        OpRecord done = rec;
        done.returned_at = rig.world->now();
        done.result = out.status == OpStatus::kOk
                          ? OpRecord::Result::kOk
                          : OpRecord::Result::kAborted;
        done.value = out.value;
        history.Add(std::move(done));
        step(key);
      });
    }
  };
  for (int key = 0; key < kKeys; ++key) {
    ++outstanding;
    step(key);
  }
  ASSERT_TRUE(
      rig.world->RunUntil([&] { return outstanding == 0; }, 10'000'000));
  ASSERT_EQ(history.size(),
            static_cast<std::size_t>(kKeys * kRoundsPerKey * 2));
  for (const OpRecord& rec : history.ops()) {
    EXPECT_EQ(rec.result, OpRecord::Result::kOk);
  }
  const CheckReport report = load::CheckRegularPerKey(history, {});
  EXPECT_TRUE(report.ok) << report.Summary();
}

// Closed-loop write/read rounds per key, keys concurrent, recorded as a
// History keyed by register (rec.client = key index). Returns the
// history; the caller judges it with the per-key checker.
History RunKeyDriverWorkload(MuxRig& rig, int keys, int rounds_per_key) {
  History history;
  int outstanding = 0;
  struct KeyDriver {
    int round = 0;
    bool reading = false;
  };
  std::vector<KeyDriver> drivers(keys);
  std::function<void(int)> step = [&](int key) {
    KeyDriver& driver = drivers[key];
    if (driver.round == rounds_per_key) {
      --outstanding;
      return;
    }
    const std::string name = "key" + std::to_string(key);
    OpRecord rec;
    rec.client = static_cast<std::uint32_t>(key);
    rec.invoked_at = rig.world->now();
    if (!driver.reading) {
      driver.reading = true;
      const Value value =
          Val("k" + std::to_string(key) + "r" + std::to_string(driver.round));
      rec.kind = OpRecord::Kind::kWrite;
      rec.value = value;
      rig.client->Put(name, value, [&, key, rec](const WriteOutcome& out) {
        OpRecord done = rec;
        done.returned_at = rig.world->now();
        done.result = out.status == OpStatus::kOk ? OpRecord::Result::kOk
                                                  : OpRecord::Result::kFailed;
        history.Add(std::move(done));
        step(key);
      });
    } else {
      driver.reading = false;
      ++driver.round;
      rec.kind = OpRecord::Kind::kRead;
      rig.client->Get(name, [&, key, rec](const ReadOutcome& out) {
        OpRecord done = rec;
        done.returned_at = rig.world->now();
        done.result = out.status == OpStatus::kOk
                          ? OpRecord::Result::kOk
                          : OpRecord::Result::kAborted;
        done.value = out.value;
        history.Add(std::move(done));
        step(key);
      });
    }
  };
  for (int key = 0; key < keys; ++key) {
    ++outstanding;
    step(key);
  }
  EXPECT_TRUE(
      rig.world->RunUntil([&] { return outstanding == 0; }, 10'000'000));
  return history;
}

TEST(MuxBatch, CoordinatedCorruptionAnswersReadsThenHeals) {
  // All six replicas corrupted from ONE seed: the per-register rng fork
  // in MuxServer::CorruptState makes the garbage AGREE across replicas,
  // so the next read is ANSWERED with a fabricated value (weight-n
  // witness on the garbage vertex) rather than aborted — the worst case
  // Theorem 2 bounds. A subsequent write must still restore regularity.
  MuxRig rig(27, 1024, false, Batch(/*max_ops=*/4, /*max_delay=*/50));
  ASSERT_TRUE(rig.Put("k", Val("before")));
  for (MuxServer* server : rig.servers) {
    Rng rng(0xC0FFEE);  // same seed at every replica
    server->CorruptState(rng);
  }
  auto corrupted = rig.Get("k");
  EXPECT_EQ(corrupted.status, OpStatus::kOk)
      << "agreeing garbage should answer, not abort";
  EXPECT_NE(corrupted.value, Val("before"));
  ASSERT_TRUE(rig.Put("k", Val("after")));
  for (int i = 0; i < 3; ++i) {
    auto got = rig.Get("k");
    ASSERT_EQ(got.status, OpStatus::kOk);
    EXPECT_EQ(got.value, Val("after"));
  }
}

// ---- Shared FLUSH rounds ---------------------------------------------

MuxBatchOptions SharedBatch(std::size_t max_ops, VirtualTime max_delay = 50) {
  MuxBatchOptions batch = Batch(max_ops, max_delay);
  batch.shared_flush = true;
  return batch;
}

TEST(MuxSharedFlush, WindowSharesOneNodeFlushRound) {
  // Eight ops on distinct registers fill one window: exactly ONE
  // NodeFlush probe goes out for all of them instead of eight FlushMsg
  // broadcasts — the amortization the shared round buys.
  MuxRig rig(31, 1024, false, SharedBatch(/*max_ops=*/8,
                                          /*max_delay=*/1'000'000));
  ASSERT_TRUE(rig.client->shared_flush());
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    rig.client->Put("key" + std::to_string(i), Val("v" + std::to_string(i)),
                    [&](const WriteOutcome& outcome) {
                      EXPECT_EQ(outcome.status, OpStatus::kOk);
                      ++done;
                    });
  }
  EXPECT_EQ(rig.client->node_flush_rounds(), 1u);
  ASSERT_TRUE(rig.world->RunUntil([&] { return done == 8; }, 2'000'000));
  EXPECT_EQ(rig.client->node_flush_rounds(), 1u);
  for (MuxServer* server : rig.servers) {
    EXPECT_EQ(server->node_flushes_acked(), 1u);
  }
  // The follow-up reads form a second window: one more round, not eight.
  int reads = 0;
  for (int i = 0; i < 8; ++i) {
    rig.client->Get("key" + std::to_string(i),
                    [&, i](const ReadOutcome& outcome) {
                      EXPECT_EQ(outcome.status, OpStatus::kOk);
                      EXPECT_EQ(outcome.value, Val("v" + std::to_string(i)));
                      ++reads;
                    });
  }
  ASSERT_TRUE(rig.world->RunUntil([&] { return reads == 8; }, 2'000'000));
  EXPECT_EQ(rig.client->node_flush_rounds(), 2u);
}

TEST(MuxSharedFlush, LoneOpFlushedByTimer) {
  // Latency floor: a lone op's flush request must ride the max_delay
  // timer out as a one-item NodeFlush round, like a lone batched op.
  MuxRig rig(32, 1024, false, SharedBatch(/*max_ops=*/8, /*max_delay=*/50));
  ASSERT_TRUE(rig.Put("alpha", Val("1")));
  EXPECT_GE(rig.client->node_flush_rounds(), 1u);
  auto got = rig.Get("alpha");
  ASSERT_EQ(got.status, OpStatus::kOk);
  EXPECT_EQ(got.value, Val("1"));
}

TEST(MuxSharedFlush, ByzantinePerRegisterMasked) {
  MuxRig rig(33, 1024, /*one_byzantine=*/true, SharedBatch(/*max_ops=*/4));
  for (int i = 0; i < 5; ++i) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(rig.Put(key, Val("val" + std::to_string(i))));
    auto got = rig.Get(key);
    ASSERT_EQ(got.status, OpStatus::kOk);
    EXPECT_EQ(got.value, Val("val" + std::to_string(i)));
  }
}

// Runs the deterministic batched workload of BatchedRun with shared
// flush on (writes then reads over 6 keys).
std::pair<std::vector<Value>, VirtualTime> SharedFlushRun(std::uint64_t seed) {
  MuxRig rig(seed, 1024, false, SharedBatch(/*max_ops=*/4, /*max_delay=*/50));
  int writes = 0;
  for (int i = 0; i < 6; ++i) {
    rig.client->Put("key" + std::to_string(i), Val("w" + std::to_string(i)),
                    [&](const WriteOutcome&) { ++writes; });
  }
  EXPECT_TRUE(rig.world->RunUntil([&] { return writes == 6; }, 2'000'000));
  std::vector<Value> values(6);
  int reads = 0;
  for (int i = 0; i < 6; ++i) {
    rig.client->Get("key" + std::to_string(i),
                    [&, i](const ReadOutcome& outcome) {
                      values[i] = outcome.value;
                      ++reads;
                    });
  }
  EXPECT_TRUE(rig.world->RunUntil([&] { return reads == 6; }, 2'000'000));
  return {values, rig.world->now()};
}

TEST(MuxSharedFlush, SharedFlushRunsAreDeterministic) {
  // NodeFlush rounds flush before the batch frames in a fixed order, so
  // shared flush adds no scheduling ambiguity either.
  auto [values_a, now_a] = SharedFlushRun(34);
  auto [values_b, now_b] = SharedFlushRun(34);
  EXPECT_EQ(values_a, values_b);
  EXPECT_EQ(now_a, now_b);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(values_a[i], Val("w" + std::to_string(i)));
  }
}

TEST(MuxSharedFlush, HistoryIsRegularPerKey) {
  MuxRig rig(35, 1024, false, SharedBatch(/*max_ops=*/4, /*max_delay=*/50));
  const History history = RunKeyDriverWorkload(rig, /*keys=*/4,
                                               /*rounds_per_key=*/3);
  ASSERT_EQ(history.size(), 24u);
  for (const OpRecord& rec : history.ops()) {
    EXPECT_EQ(rec.result, OpRecord::Result::kOk);
  }
  const CheckReport report = load::CheckRegularPerKey(history, {});
  EXPECT_TRUE(report.ok) << report.Summary();
  // With multiple registers per window, NodeFlush rounds amortize: far
  // fewer rounds than the 24 FLUSH phases the ops needed.
  EXPECT_LT(rig.client->node_flush_rounds(), 24u);
  EXPECT_GE(rig.client->node_flush_rounds(), 1u);
}

TEST(MuxSharedFlush, EquivocatingFlushAckStillRegularPerKey) {
  // Schedule exploration for the nastiest shared-flush attack: a
  // Byzantine server ACKS the node-level FLUSH (so the window appears
  // to drain) but equivocates the per-register labels/scopes inside the
  // ack, while its per-register automata also replay stale state. The
  // inner stale-ack filter must absorb the forged elements exactly like
  // forged per-register FLUSH_ACKs, and every key must stay regular.
  for (std::uint64_t seed = 40; seed < 46; ++seed) {
    MuxRig rig(seed, 1024, /*one_byzantine=*/true,
               SharedBatch(/*max_ops=*/4, /*max_delay=*/50));
    rig.servers[2]->SetFlushAckMutator(MakeFlushEquivocator(seed * 7 + 1));
    const History history = RunKeyDriverWorkload(rig, /*keys=*/4,
                                                 /*rounds_per_key=*/2);
    ASSERT_EQ(history.size(), 16u) << "seed " << seed;
    for (const OpRecord& rec : history.ops()) {
      EXPECT_NE(rec.result, OpRecord::Result::kFailed) << "seed " << seed;
    }
    const CheckReport report = load::CheckRegularPerKey(history, {});
    EXPECT_TRUE(report.ok) << "seed " << seed << ": " << report.Summary();
  }
}

TEST(MuxSharedFlush, TransientCorruptionHeals) {
  // CorruptState clears the coordinator's window; stabilization must
  // still go through with shared flush on.
  MuxRig rig(36, 1024, false, SharedBatch(/*max_ops=*/4, /*max_delay=*/50));
  ASSERT_TRUE(rig.Put("k", Val("before")));
  for (std::size_t i = 0; i < 6; ++i) {
    rig.world->CorruptNode(rig.server_ids[i]);
  }
  rig.world->CorruptNode(rig.client_id);
  ASSERT_TRUE(rig.Put("k", Val("after")));
  for (int i = 0; i < 3; ++i) {
    auto got = rig.Get("k");
    ASSERT_EQ(got.status, OpStatus::kOk);
    EXPECT_EQ(got.value, Val("after"));
  }
}

// ---- Zero-delay batch windows ----------------------------------------

/// Sink endpoint for driving batch hooks directly from a test; the mux
/// client ignores the hook's endpoint argument (it routes through the
/// endpoint cached at OnStart).
struct NullEndpoint final : IEndpoint {
  void Send(NodeId, Bytes) override {}
  void SetTimer(VirtualTime, int) override {}
  [[nodiscard]] VirtualTime Now() const override { return 0; }
  [[nodiscard]] NodeId self() const override { return 0; }
  Rng& rng() override { return rng_; }
  Rng rng_{0};
};

TEST(MuxBatch, ZeroDelayCoalescesWithinOneScope) {
  // max_delay = 0 must NOT degenerate to one-op rounds: ops submitted
  // inside one batch scope (one runtime mailbox drain) still coalesce
  // into a single shared round, released when the scope closes.
  MuxRig rig(37, 1024, false, SharedBatch(/*max_ops=*/8, /*max_delay=*/0));
  NullEndpoint hook;
  int done = 0;
  rig.client->OnBatchStart(hook);
  for (int i = 0; i < 3; ++i) {
    rig.client->Put("key" + std::to_string(i), Val("v"),
                    [&](const WriteOutcome& outcome) {
                      EXPECT_EQ(outcome.status, OpStatus::kOk);
                      ++done;
                    });
  }
  // Queued, not launched one-by-one: the open scope holds the window.
  EXPECT_EQ(rig.client->pending_ops(), 3u);
  EXPECT_EQ(rig.client->node_flush_rounds(), 0u);
  rig.client->OnBatchEnd(hook);
  EXPECT_EQ(rig.client->pending_ops(), 0u);
  EXPECT_EQ(rig.client->node_flush_rounds(), 1u);
  ASSERT_TRUE(rig.world->RunUntil([&] { return done == 3; }, 2'000'000));
}

TEST(MuxBatch, ZeroDelayLoneOpStartsImmediately) {
  // Outside any scope there is nothing to wait for: with max_delay = 0
  // no timer is armed and the op's round starts on submission.
  MuxRig rig(38, 1024, false, Batch(/*max_ops=*/8, /*max_delay=*/0));
  bool done = false;
  rig.client->Put("alpha", Val("1"), [&](const WriteOutcome& outcome) {
    EXPECT_EQ(outcome.status, OpStatus::kOk);
    done = true;
  });
  EXPECT_EQ(rig.client->pending_ops(), 0u);
  ASSERT_TRUE(rig.world->RunUntil([&] { return done; }, 2'000'000));
  auto got = rig.Get("alpha");
  ASSERT_EQ(got.status, OpStatus::kOk);
  EXPECT_EQ(got.value, Val("1"));
}

TEST(MuxBatch, ZeroDelaySameRegisterBackToBackTerminates) {
  // Two ops on the SAME register: the second requeues (register busy)
  // and must restart via a reply-driven scope close — never via a
  // zero-delay timer, which would livelock the virtual clock.
  MuxRig rig(39, 1024, false, Batch(/*max_ops=*/8, /*max_delay=*/0));
  int done = 0;
  rig.client->Put("k", Val("first"), [&](const WriteOutcome& outcome) {
    EXPECT_EQ(outcome.status, OpStatus::kOk);
    ++done;
  });
  rig.client->Put("k", Val("second"), [&](const WriteOutcome& outcome) {
    EXPECT_EQ(outcome.status, OpStatus::kOk);
    ++done;
  });
  ASSERT_TRUE(rig.world->RunUntil([&] { return done == 2; }, 2'000'000));
  EXPECT_EQ(rig.Get("k").value, Val("second"));
}

TEST(MuxSharedFlush, ZeroDelaySameRegisterBackToBackTerminates) {
  MuxRig rig(41, 1024, false, SharedBatch(/*max_ops=*/8, /*max_delay=*/0));
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    rig.client->Put("k", Val("v" + std::to_string(i)),
                    [&](const WriteOutcome& outcome) {
                      EXPECT_EQ(outcome.status, OpStatus::kOk);
                      ++done;
                    });
  }
  ASSERT_TRUE(rig.world->RunUntil([&] { return done == 4; }, 4'000'000));
  EXPECT_EQ(rig.Get("k").value, Val("v3"));
}

}  // namespace
}  // namespace sbft
