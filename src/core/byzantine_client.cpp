#include "core/byzantine_client.hpp"

namespace sbft {

ByzantineClient::ByzantineClient(ByzantineClientStrategy strategy,
                                 std::vector<NodeId> servers,
                                 std::uint32_t k, std::uint64_t seed,
                                 std::size_t rounds)
    : strategy_(strategy),
      servers_(std::move(servers)),
      labels_(k),
      noise_(seed),
      rounds_left_(rounds) {}

void ByzantineClient::OnStart(IEndpoint& endpoint) {
  endpoint.SetTimer(1, /*timer_id=*/0);
  FireRound(endpoint);
}

void ByzantineClient::OnFrame(NodeId, BytesView, IEndpoint& endpoint) {
  // Every reply provokes another attack round (keeps the pressure up
  // exactly while servers are responsive), until the budget runs out.
  if (rounds_left_ > 0) {
    --rounds_left_;
    FireRound(endpoint);
  }
}

void ByzantineClient::FireRound(IEndpoint& endpoint) {
  for (NodeId server : servers_) {
    switch (strategy_) {
      case ByzantineClientStrategy::kReadFlooder: {
        ReadMsg read;
        read.label = static_cast<OpLabel>(noise_());
        endpoint.Send(server, EncodeMessage(Message(read)));
        FlushMsg flush;
        flush.label = static_cast<OpLabel>(noise_());
        flush.scope = noise_.NextBool(0.5) ? OpScope::kRead : OpScope::kWrite;
        endpoint.Send(server, EncodeMessage(Message(flush)));
        break;
      }
      case ByzantineClientStrategy::kGarbageSprayer: {
        endpoint.Send(server, RandomBytes(noise_, 1 + noise_.NextBelow(64)));
        break;
      }
      case ByzantineClientStrategy::kForgedWriter: {
        // Owned storage: WriteMsg::value is a view and must not bind to
        // a temporary.
        const Bytes forged = RandomBytes(noise_, 4);
        WriteMsg write;
        write.value = forged;
        write.ts = Timestamp{noise_.NextBool(0.5)
                                 ? RandomValidLabel(noise_, labels_.params())
                                 : RandomGarbageLabel(noise_,
                                                      labels_.params()),
                             static_cast<ClientId>(noise_())};
        write.op_label = static_cast<OpLabel>(noise_());
        endpoint.Send(server, EncodeMessage(Message(write)));
        CompleteReadMsg complete;
        complete.label = static_cast<OpLabel>(noise_());
        endpoint.Send(server, EncodeMessage(Message(complete)));
        break;
      }
    }
  }
}

const char* ByzantineClientStrategyName(ByzantineClientStrategy strategy) {
  switch (strategy) {
    case ByzantineClientStrategy::kReadFlooder:
      return "read-flooder";
    case ByzantineClientStrategy::kGarbageSprayer:
      return "garbage-sprayer";
    case ByzantineClientStrategy::kForgedWriter:
      return "forged-writer";
  }
  return "unknown";
}

std::optional<ByzantineClientStrategy> ByzantineClientStrategyFromName(
    std::string_view name) {
  for (ByzantineClientStrategy strategy : kAllByzantineClientStrategies) {
    if (name == ByzantineClientStrategyName(strategy)) return strategy;
  }
  return std::nullopt;
}

}  // namespace sbft
