// Unit tests for the bounds-checked wire codec. The decoding paths are
// the first line of defence against corrupted channel contents (§II),
// so the garbage cases matter as much as the round-trips.
#include "common/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/rng.hpp"

namespace sbft {
namespace {

TEST(Serialize, RoundTripsIntegers) {
  BufWriter w;
  w.Put<std::uint8_t>(0xAB);
  w.Put<std::uint32_t>(0xDEADBEEF);
  w.Put<std::uint64_t>(std::numeric_limits<std::uint64_t>::max());
  w.Put<std::int32_t>(-12345);

  BufReader r(w.data());
  EXPECT_EQ(r.Get<std::uint8_t>(), 0xAB);
  EXPECT_EQ(r.Get<std::uint32_t>(), 0xDEADBEEFu);
  EXPECT_EQ(r.Get<std::uint64_t>(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(r.Get<std::int32_t>(), -12345);
  EXPECT_TRUE(r.AtEndOk());
}

TEST(Serialize, RoundTripsStringsAndBytes) {
  BufWriter w;
  w.PutString("hello register");
  w.PutString("");
  w.PutBytes(Bytes{1, 2, 3});

  BufReader r(w.data());
  EXPECT_EQ(r.GetString(), "hello register");
  EXPECT_EQ(r.GetString(), "");
  EXPECT_EQ(r.GetBytes(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.AtEndOk());
}

TEST(Serialize, RoundTripsVectors) {
  BufWriter w;
  std::vector<std::uint32_t> values{7, 11, 13};
  w.PutVector(values,
              [](BufWriter& bw, std::uint32_t v) { bw.Put<std::uint32_t>(v); });

  BufReader r(w.data());
  auto decoded = r.GetVector<std::uint32_t>(
      [](BufReader& br) { return br.Get<std::uint32_t>(); });
  EXPECT_EQ(decoded, values);
  EXPECT_TRUE(r.AtEndOk());
}

TEST(Serialize, TruncatedIntegerFailsSticky) {
  Bytes two_bytes{0x01, 0x02};
  BufReader r(two_bytes);
  (void)r.Get<std::uint32_t>();
  EXPECT_TRUE(r.failed());
  // Sticky: subsequent reads also fail and return zero values.
  EXPECT_EQ(r.Get<std::uint8_t>(), 0);
  EXPECT_TRUE(r.failed());
  EXPECT_FALSE(r.AtEndOk());
}

TEST(Serialize, AbsurdLengthPrefixRejected) {
  BufWriter w;
  w.Put<std::uint32_t>(0xFFFFFFFF);  // length prefix far beyond buffer
  BufReader r(w.data());
  Bytes out = r.GetBytes();
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(r.failed());
}

TEST(Serialize, VectorWithHugeCountRejected) {
  BufWriter w;
  w.Put<std::uint32_t>(kMaxWireElements + 1);
  BufReader r(w.data());
  auto decoded = r.GetVector<std::uint32_t>(
      [](BufReader& br) { return br.Get<std::uint32_t>(); });
  EXPECT_TRUE(decoded.empty());
  EXPECT_TRUE(r.failed());
}

TEST(Serialize, TrailingGarbageNotAtEndOk) {
  BufWriter w;
  w.Put<std::uint16_t>(5);
  w.Put<std::uint8_t>(9);
  BufReader r(w.data());
  EXPECT_EQ(r.Get<std::uint16_t>(), 5);
  EXPECT_FALSE(r.AtEndOk());  // one byte left unread
}

TEST(Serialize, VectorReserveCappedByRemainingBytes) {
  // A forged count below kMaxWireElements but far beyond the frame's
  // actual contents must not pre-allocate past the frame: the decode
  // fails once elements run out, and the speculative reserve is bounded
  // by the bytes that were left.
  BufWriter w;
  w.Put<std::uint32_t>(500'000);  // claims half a million elements
  w.Put<std::uint64_t>(1);        // ...but only one is present
  BufReader r(w.data());
  auto out = r.GetVector<std::uint64_t>(
      [](BufReader& br) { return br.Get<std::uint64_t>(); });
  EXPECT_TRUE(r.failed());
  EXPECT_LE(out.capacity(), w.data().size());
}

TEST(Serialize, WriterReusesCallerBuffer) {
  Bytes recycled;
  recycled.reserve(256);
  const auto* storage = recycled.data();
  BufWriter w(std::move(recycled));
  w.Put<std::uint32_t>(42);
  Bytes out = w.Take();
  EXPECT_EQ(out.data(), storage);  // no fresh allocation
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 42u);
}

// Property: decoding arbitrary garbage never crashes and either fails or
// consumes within bounds. This is exercised at scale because garbage
// frames are a first-class input in the transient-fault model.
TEST(Serialize, FuzzDecodingGarbageIsTotal) {
  Rng rng(0x5EED);
  for (int round = 0; round < 2000; ++round) {
    Bytes garbage = RandomBytes(rng, rng.NextBelow(64));
    BufReader r(garbage);
    (void)r.Get<std::uint32_t>();
    (void)r.GetString();
    (void)r.GetVector<std::uint64_t>(
        [](BufReader& br) { return br.Get<std::uint64_t>(); });
    (void)r.GetBytes();
    // No assertion needed beyond "did not crash"; but the reader must
    // never report more remaining bytes than the buffer held.
    EXPECT_LE(r.remaining(), garbage.size());
  }
}

}  // namespace
}  // namespace sbft
