// Deterministic pseudo-random number generation.
//
// All randomness in sbftreg (schedulers, fault injectors, workloads,
// Byzantine strategies) flows through Rng so that every simulation run is
// exactly reproducible from a single 64-bit seed. We implement
// xoshiro256** seeded through SplitMix64 (the reference seeding
// procedure) rather than using std::mt19937 so the stream is stable
// across standard libraries.
#pragma once

#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace sbft {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic generator. Satisfies the subset of
/// UniformRandomBitGenerator we need; intentionally not copy-hostile —
/// copying an Rng forks the stream, which tests use on purpose.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xC0FFEE0DDF00Dull) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t NextBelow(std::uint64_t bound) {
    SBFT_ASSERT(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % bound;
    std::uint64_t draw = (*this)();
    while (draw >= limit) draw = (*this)();
    return draw % bound;
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    SBFT_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? (*this)()
                                                    : NextBelow(span));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool NextBool(double p) { return NextDouble() < p; }

  /// Derive an independent child stream; used to give each simulated
  /// component its own generator without coupling their consumption.
  Rng Fork() { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace sbft
