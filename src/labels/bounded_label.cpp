#include "labels/bounded_label.hpp"

#include <algorithm>
#include <sstream>

namespace sbft {

std::strong_ordering Label::CompareRepr(const Label& other) const {
  if (auto c = sting <=> other.sting; c != 0) return c;
  return antistings <=> other.antistings;
}

std::string Label::ToString() const {
  std::ostringstream out;
  out << "(" << sting << "|{";
  for (std::size_t i = 0; i < antistings.size(); ++i) {
    if (i != 0) out << ",";
    out << antistings[i];
  }
  out << "})";
  return out.str();
}

bool IsValid(const Label& label, const LabelParams& params) {
  const std::uint32_t m = params.Domain();
  if (label.sting >= m) return false;
  if (label.antistings.size() != params.k) return false;
  if (!std::is_sorted(label.antistings.begin(), label.antistings.end()))
    return false;
  for (std::size_t i = 0; i < label.antistings.size(); ++i) {
    if (label.antistings[i] >= m) return false;
    if (i > 0 && label.antistings[i] == label.antistings[i - 1]) return false;
    if (label.antistings[i] == label.sting) return false;
  }
  return true;
}

Label Sanitize(Label label, const LabelParams& params) {
  // Steady state: every label on the wire is already valid, and the
  // full normalization below (mod, sort, dedup, pad) on a valid label
  // is the identity. One validation scan replaces it — Sanitize is the
  // hottest label operation (every timestamp of every quorum reply
  // passes through it), and the slow path only runs on fault-injected
  // garbage.
  if (IsValid(label, params)) return label;
  const std::uint32_t m = params.Domain();
  label.sting %= m;
  for (auto& a : label.antistings) a %= m;
  std::sort(label.antistings.begin(), label.antistings.end());
  label.antistings.erase(
      std::unique(label.antistings.begin(), label.antistings.end()),
      label.antistings.end());
  label.antistings.erase(std::remove(label.antistings.begin(),
                                     label.antistings.end(), label.sting),
                         label.antistings.end());
  if (label.antistings.size() > params.k) {
    label.antistings.resize(params.k);
  }
  // Pad with the smallest unused domain elements. Domain() > k+1 ensures
  // enough candidates even after skipping the sting.
  std::uint32_t candidate = 0;
  while (label.antistings.size() < params.k) {
    const bool used =
        candidate == label.sting ||
        std::binary_search(label.antistings.begin(), label.antistings.end(),
                           candidate);
    if (!used) {
      label.antistings.insert(
          std::upper_bound(label.antistings.begin(), label.antistings.end(),
                           candidate),
          candidate);
    }
    ++candidate;
  }
  return label;
}

bool Precedes(const Label& a, const Label& b, const LabelParams& params) {
  if (!IsValid(a, params) || !IsValid(b, params)) {
    // Garbage never precedes nor is preceded: an invalid label is outside
    // the labeling system. Callers that must make progress sanitize first.
    return false;
  }
  const bool a_sting_in_b = std::binary_search(b.antistings.begin(),
                                               b.antistings.end(), a.sting);
  const bool b_sting_in_a = std::binary_search(a.antistings.begin(),
                                               a.antistings.end(), b.sting);
  return a_sting_in_b && !b_sting_in_a;
}

Label InitialLabel(const LabelParams& params) {
  Label label;
  label.sting = params.k;  // antistings occupy 0..k-1
  label.antistings.resize(params.k);
  for (std::uint32_t i = 0; i < params.k; ++i) label.antistings[i] = i;
  return label;
}

Label RandomValidLabel(Rng& rng, const LabelParams& params) {
  const std::uint32_t m = params.Domain();
  // Sample a k+1 subset by rejection (domain is small: m = k^2+k+1).
  std::vector<std::uint32_t> picks;
  while (picks.size() < params.k + 1) {
    const auto candidate = static_cast<std::uint32_t>(rng.NextBelow(m));
    if (std::find(picks.begin(), picks.end(), candidate) == picks.end()) {
      picks.push_back(candidate);
    }
  }
  Label label;
  label.sting = picks.back();
  picks.pop_back();
  std::sort(picks.begin(), picks.end());
  label.antistings.assign(picks.begin(), picks.end());
  return label;
}

Label RandomGarbageLabel(Rng& rng, const LabelParams& params) {
  Label label;
  label.sting = static_cast<std::uint32_t>(rng());
  const auto count = rng.NextBelow(2 * params.k + 2);
  label.antistings.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    label.antistings.push_back(static_cast<std::uint32_t>(rng()));
  }
  return label;
}

}  // namespace sbft
