#include "net/lossy_channel.hpp"

namespace sbft {

bool LossyChannel::Push(Bytes frame) {
  if (rng_.NextBool(options_.drop_probability)) return false;
  if (frames_.size() >= options_.capacity) return false;
  frames_.push_back(std::move(frame));
  return true;
}

std::optional<Bytes> LossyChannel::Pop() {
  if (frames_.empty()) return std::nullopt;
  const std::size_t index = rng_.NextBelow(frames_.size());
  Bytes out = std::move(frames_[index]);
  frames_[index] = std::move(frames_.back());
  frames_.pop_back();
  return out;
}

void LossyChannel::PreloadGarbage(std::size_t count,
                                  std::size_t max_frame_size) {
  for (std::size_t i = 0; i < count && frames_.size() < options_.capacity;
       ++i) {
    frames_.push_back(RandomBytes(rng_, 1 + rng_.NextBelow(max_frame_size)));
  }
}

void LossyChannel::CorruptInFlight() {
  for (Bytes& frame : frames_) {
    frame = RandomBytes(rng_, frame.empty() ? 1 : frame.size());
  }
}

}  // namespace sbft
