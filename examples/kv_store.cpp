// A fault-tolerant key-value store in ~60 lines of application code:
// many independent registers multiplexed over one 6-server deployment,
// with a Byzantine replica and a corruption event in the middle.
//
//   $ ./build/examples/kv_store
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/mux.hpp"
#include "sim/world.hpp"

using namespace sbft;

namespace {

Value Val(const std::string& text) { return Value(text.begin(), text.end()); }
std::string Show(const Value& value) {
  return std::string(value.begin(), value.end());
}

}  // namespace

int main() {
  World world;
  auto config = ProtocolConfig::ForServers(6);
  std::vector<NodeId> server_ids;
  for (std::size_t i = 0; i < 6; ++i) {
    MuxServer::ServerFactory factory;
    if (i == 4) {  // one Byzantine replica, hostile on EVERY register
      factory = [config, i](RegisterId id) {
        return MakeByzantineServer(ByzantineStrategy::kEquivocate, config,
                                   i, id);
      };
    }
    server_ids.push_back(world.AddNode(
        std::make_unique<MuxServer>(config, i, 1024, std::move(factory))));
  }
  auto client_owner = std::make_unique<MuxClient>(config, server_ids, 100);
  MuxClient* kv = client_owner.get();
  world.AddNode(std::move(client_owner));
  world.RunUntil([] { return true; }, 0);

  auto put = [&](const std::string& key, const std::string& value) {
    bool done = false;
    kv->Put(key, Val(value), [&](const WriteOutcome& outcome) {
      std::printf("  PUT %-14s = %-12s -> %s\n", key.c_str(), value.c_str(),
                  outcome.status == OpStatus::kOk ? "ok" : "FAILED");
      done = true;
    });
    world.RunUntil([&] { return done; }, 1'000'000);
  };
  auto get = [&](const std::string& key) {
    bool done = false;
    kv->Get(key, [&](const ReadOutcome& outcome) {
      std::printf("  GET %-14s -> %s\n", key.c_str(),
                  outcome.status == OpStatus::kOk
                      ? Show(outcome.value).c_str()
                      : "(aborted)");
      done = true;
    });
    world.RunUntil([&] { return done; }, 1'000'000);
  };

  std::printf("== kv store over 6 replicas (replica 4 is Byzantine) ==\n");
  put("users/alice", "admin");
  put("users/bob", "viewer");
  put("quota/alice", "100GB");
  get("users/alice");
  get("quota/alice");

  std::printf("\n!! transient fault corrupts every replica's memory\n");
  for (NodeId id : server_ids) world.CorruptNode(id);

  std::printf("   (writes stabilize each register independently)\n");
  put("users/alice", "admin");   // heal this register
  put("users/carol", "ops");     // and create a fresh one
  get("users/alice");
  get("users/carol");
  get("users/bob");  // never re-written since the fault: may abort
  std::printf("\nnote: keys not re-written since the fault may abort until "
              "their first post-fault write — that is pseudo-stabilization "
              "per register.\n");
  return 0;
}
