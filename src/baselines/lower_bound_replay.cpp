#include "baselines/lower_bound_replay.hpp"

#include <memory>
#include <sstream>
#include <vector>

#include "baselines/naive_quorum.hpp"
#include "common/error.hpp"
#include "sim/world.hpp"

namespace sbft {
namespace {

Value Val(const std::string& text) { return Value(text.begin(), text.end()); }

struct Replay {
  explicit Replay(const ReplayOptions& opts)
      : options(opts),
        n(5 * opts.f + opts.extra_correct),
        k(n < 2 ? 2 : n),
        labels(k),
        world(World::Options{opts.seed,
                             std::make_unique<UniformDelay>(1, 4)}) {}

  const ReplayOptions& options;
  std::uint32_t n;
  std::uint32_t k;
  LabelingSystem labels;
  World world;

  // Group boundaries (server indices).
  // [0, a_fast) = A_fast, [a_fast, a_slow_end) = A_slow,
  // [a_slow_end, s4_end) = S4, [s4_end, n) = Byzantine.
  std::uint32_t a_fast = 0;
  std::uint32_t a_slow_end = 0;
  std::uint32_t s4_end = 0;

  std::vector<NodeId> server_ids;
  std::vector<NqServer*> correct_servers;
  std::vector<NqScriptedServer*> byz_servers;
  NqClient* writer = nullptr;
  NqClient* reader = nullptr;
  NodeId writer_id = 0;
  NodeId reader_id = 0;

  Timestamp tsx, tb, ts0, ts1, ts2;

  void HoldGroup(std::uint32_t lo, std::uint32_t hi, NodeId client,
                 bool to_client, bool from_client, bool in_flight = false) {
    for (std::uint32_t i = lo; i < hi; ++i) {
      if (to_client) world.HoldChannel(server_ids[i], client, in_flight);
      if (from_client) world.HoldChannel(client, server_ids[i], in_flight);
    }
  }
  void ReleaseGroup(std::uint32_t lo, std::uint32_t hi, NodeId client,
                    bool to_client, bool from_client) {
    for (std::uint32_t i = lo; i < hi; ++i) {
      if (to_client) world.ReleaseChannel(server_ids[i], client);
      if (from_client) world.ReleaseChannel(client, server_ids[i]);
    }
  }
};

}  // namespace

std::string ReplayResult::Summary() const {
  std::ostringstream out;
  out << "r1=" << std::string(r1_value.begin(), r1_value.end())
      << " r2=" << std::string(r2_value.begin(), r2_value.end())
      << " -> " << (violated() ? "REGULARITY VIOLATED" : "regular");
  return out.str();
}

ReplayResult RunTheorem1Replay(const ReplayOptions& options) {
  SBFT_ASSERT(options.f >= 1);
  Replay rig(options);
  const std::uint32_t f = options.f;
  rig.a_fast = 2 * f + options.extra_correct;
  rig.a_slow_end = rig.a_fast + f;
  rig.s4_end = rig.a_slow_end + f;

  // --- Adversary's precomputation (it controls the initial state, the
  // schedule and its own replies, and the protocol is deterministic).
  // The proof needs the planted label ts2 to dominate BOTH ts0 and ts1
  // ("ts2 > ts0", "ts1 < ts2") — domination is not transitive, so the
  // adversary arranges it by having its Byzantine servers report ts0
  // (instead of tb) during w2's GET_TS phase: the writer then computes
  // exactly next({ts0, ts1}), which dominates both by Definition 2.
  Rng label_rng(options.seed + 7);
  rig.tsx = Timestamp{rig.labels.Initial(), 0};
  const ClientId writer_client_id = rig.n + 0;
  auto next_of = [&](std::vector<Label> in) {
    return Timestamp{rig.labels.Next(in), writer_client_id};
  };
  rig.tb = Timestamp{RandomValidLabel(label_rng, rig.labels.params()), 0};
  rig.ts0 = next_of({rig.tsx.label, rig.tb.label});
  rig.ts1 = next_of({rig.ts0.label, rig.tb.label});
  rig.ts2 = next_of({rig.ts0.label, rig.ts1.label});
  SBFT_ASSERT(rig.labels.Precedes(rig.ts0.label, rig.ts2.label));
  SBFT_ASSERT(rig.labels.Precedes(rig.ts1.label, rig.ts2.label));

  // --- Build the world.
  for (std::uint32_t i = 0; i < rig.s4_end; ++i) {
    auto server = std::make_unique<NqServer>(rig.k);
    if (i >= rig.a_slow_end) {
      // S4 group: transient fault planted ts2 with a garbage value.
      server->SetState(rig.ts2, Val("corrupt-s4"));
    } else {
      server->SetState(rig.tsx, Val("corrupt-x"));
    }
    rig.correct_servers.push_back(server.get());
    rig.server_ids.push_back(rig.world.AddNode(std::move(server)));
  }
  for (std::uint32_t i = rig.s4_end; i < rig.n; ++i) {
    auto server = std::make_unique<NqScriptedServer>();
    server->ts_for_get_ts = rig.tb;
    rig.byz_servers.push_back(server.get());
    rig.server_ids.push_back(rig.world.AddNode(std::move(server)));
  }
  auto writer = std::make_unique<NqClient>(rig.server_ids, f, rig.k,
                                           writer_client_id);
  rig.writer = writer.get();
  rig.writer_id = rig.world.AddNode(std::move(writer));
  auto reader = std::make_unique<NqClient>(rig.server_ids, f, rig.k,
                                           rig.n + 1);
  rig.reader = reader.get();
  rig.reader_id = rig.world.AddNode(std::move(reader));
  // Run OnStart hooks so clients capture their endpoints.
  rig.world.RunUntil([] { return true; }, 0);

  ReplayResult result;
  History& history = result.history;

  auto drive_write = [&](const Value& value) -> bool {
    OpRecord record;
    record.kind = OpRecord::Kind::kWrite;
    record.client = 0;
    record.invoked_at = rig.world.now();
    record.value = value;
    bool done = false;
    rig.writer->StartWrite(value, [&](bool ok) {
      record.result =
          ok ? OpRecord::Result::kOk : OpRecord::Result::kFailed;
      record.returned_at = rig.world.now();
      done = true;
    });
    const bool completed =
        rig.world.RunUntil([&] { return done; }, 2'000'000);
    if (completed) history.Add(record);
    return completed;
  };
  auto drive_read = [&](Bytes* out_value) -> bool {
    OpRecord record;
    record.kind = OpRecord::Kind::kRead;
    record.client = 1;
    record.invoked_at = rig.world.now();
    bool done = false;
    rig.reader->StartRead([&](const NqReadOutcome& outcome) {
      record.result = outcome.ok ? OpRecord::Result::kOk
                                 : OpRecord::Result::kAborted;
      record.returned_at = rig.world.now();
      record.value = outcome.value;
      *out_value = outcome.value;
      done = true;
    });
    const bool completed =
        rig.world.RunUntil([&] { return done; }, 2'000'000);
    if (completed) history.Add(record);
    return completed;
  };

  // --- w0 and w1: S4 held in both directions ("s4 is slow").
  rig.HoldGroup(rig.a_slow_end, rig.s4_end, rig.writer_id, true, true);
  if (!drive_write(Val("v0"))) return result;
  const VirtualTime stabilized_from = rig.world.now();
  if (!drive_write(Val("v1"))) return result;

  // --- r1: A_slow -> reader held; Byzantine mimics S4's (ts2, value).
  for (NqScriptedServer* byz : rig.byz_servers) {
    byz->read_script = {{rig.ts2, Val("corrupt-s4")}};
  }
  rig.HoldGroup(rig.a_fast, rig.a_slow_end, rig.reader_id, true, false);
  if (!drive_read(&result.r1_value)) return result;

  // --- w2: S4 receives the write but its GET_TS reply is withheld until
  // the timestamp (exactly ts2) has been computed; the WRITE to A_slow
  // is frozen in flight ("s3 is slow in modifying its timestamp"). The
  // Byzantine group now reports ts0 so the writer computes
  // next({ts1, ts0}) = ts2 (see the precomputation note above).
  for (NqScriptedServer* byz : rig.byz_servers) {
    byz->ts_for_get_ts = rig.ts0;
  }
  rig.ReleaseGroup(rig.a_slow_end, rig.s4_end, rig.writer_id, false, true);
  // S4 -> writer stays held from the w0/w1 phase.
  {
    OpRecord record;
    record.kind = OpRecord::Kind::kWrite;
    record.client = 0;
    record.invoked_at = rig.world.now();
    record.value = Val("v2");
    bool done = false;
    rig.writer->StartWrite(Val("v2"), [&](bool ok) {
      record.result =
          ok ? OpRecord::Result::kOk : OpRecord::Result::kFailed;
      record.returned_at = rig.world.now();
      done = true;
    });
    // Wait until the writer commits to its write timestamp...
    const bool ts_ready = rig.world.RunUntil(
        [&] { return done || rig.writer->last_write_ts() == rig.ts2; },
        2'000'000);
    if (!ts_ready) return result;
    // ...then freeze the WRITEs still in flight towards A_slow and let
    // S4's replies through (its stale GET_TS answers are discarded by
    // the rid check; its fresh WRITE ack completes the quorum — the
    // proof's configuration (ts2, ts2, ts1, ts2, tb)).
    rig.HoldGroup(rig.a_fast, rig.a_slow_end, rig.writer_id, false, true,
                  /*in_flight=*/true);
    rig.ReleaseGroup(rig.a_slow_end, rig.s4_end, rig.writer_id, true, false);
    if (!rig.world.RunUntil([&] { return done; }, 2'000'000)) return result;
    history.Add(record);
  }

  // --- r2: S4 -> reader held; Byzantine mimics A_slow's (ts1, v1).
  for (NqScriptedServer* byz : rig.byz_servers) {
    byz->read_script = {{rig.ts1, Val("v1")}};
  }
  rig.ReleaseGroup(rig.a_fast, rig.a_slow_end, rig.reader_id, true, false);
  rig.HoldGroup(rig.a_slow_end, rig.s4_end, rig.reader_id, true, false);
  if (!drive_read(&result.r2_value)) return result;

  result.all_ops_completed = true;
  CheckOptions check;
  check.stabilized_from = stabilized_from;
  check.grandfathered_values = {Val("corrupt-x")};
  result.report = CheckRegular(history, check);
  return result;
}

}  // namespace sbft
