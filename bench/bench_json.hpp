// Shared machine-readable output for the bench_* binaries.
//
// Every bench accepts:
//   --json <path>   write the metrics recorded via JsonReport::Metric to
//                   <path> as a small stable JSON document (the BENCH_*.json
//                   trajectory files are produced this way);
//   --smoke         reduced iteration counts for CI smoke runs;
//   --jobs N        worker threads for benches whose sweeps run
//                   independent sims (0 = one per hardware core).
//                   Metrics are identical for every N.
//   --clients LIST  comma-separated logical-client counts for benches
//                   with a concurrency sweep (e.g. --clients 1,8,64,256);
//                   empty means the bench's default sweep.
//   --reactor-threads N
//                   epoll reactor threads for benches with a TCP arm
//                   (default 1; the CI smoke matrix also runs a 2-thread
//                   leg to keep the multi-reactor path measured).
//   --cooldown-ms N idle sleep between sweep arms. An arm inherits the
//                   previous arm's thermal/scheduler state (warmed
//                   caches, CPU governor, lingering TIME_WAIT sockets);
//                   a cool-down pause makes in-sweep points comparable
//                   to isolated single-arm runs. Recorded into the JSON
//                   as `sweep.cooldown_ms` so a committed baseline says
//                   which mode produced it.
//   --only SUBSTR   run only arms whose metric key contains SUBSTR —
//                   full process isolation for one arm (the strongest
//                   form of the above: fresh process, no prior arms).
//
// The JSON is deliberately timestamp-free so artifacts diff cleanly;
// provenance (commit, date) lives in git history / CI metadata.
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace sbft::bench {

struct BenchArgs {
  std::string json_path;  // empty: no JSON output
  bool smoke = false;
  std::size_t jobs = 1;   // 0 = one per hardware core
  std::vector<std::size_t> clients;  // empty: bench default sweep
  std::size_t reactor_threads = 1;
  std::size_t cooldown_ms = 0;
  std::string only;  // empty: run every arm
};

inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      args.smoke = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      args.jobs = static_cast<std::size_t>(
          std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--reactor-threads") == 0 &&
               i + 1 < argc) {
      args.reactor_threads = static_cast<std::size_t>(
          std::strtoull(argv[++i], nullptr, 10));
      if (args.reactor_threads == 0) args.reactor_threads = 1;
    } else if (std::strcmp(argv[i], "--cooldown-ms") == 0 && i + 1 < argc) {
      args.cooldown_ms = static_cast<std::size_t>(
          std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
      args.only = argv[++i];
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      const char* p = argv[++i];
      while (*p != '\0') {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(p, &end, 10);
        if (end == p) break;  // not a number: stop parsing the list
        if (v > 0) args.clients.push_back(static_cast<std::size_t>(v));
        p = (*end == ',') ? end + 1 : end;
      }
    }
  }
  return args;
}

/// Collects (name, value, unit) rows and writes them as JSON on Flush.
/// Metric names use dotted lowercase ("hotpath.allocs_per_op").
class JsonReport {
 public:
  JsonReport(std::string bench, BenchArgs args)
      : bench_(std::move(bench)), args_(std::move(args)) {}

  void Metric(const std::string& name, double value,
              const std::string& unit = "") {
    metrics_.push_back({name, value, unit});
  }

  /// Write the report if --json was given. Returns false on I/O failure.
  bool Flush() const {
    if (args_.json_path.empty()) return true;
    std::ofstream out(args_.json_path);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write %s\n",
                   args_.json_path.c_str());
      return false;
    }
    out << "{\n  \"bench\": \"" << bench_ << "\",\n  \"metrics\": [\n";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const Row& row = metrics_[i];
      char value[64];
      std::snprintf(value, sizeof(value), "%.6g", row.value);
      out << "    {\"name\": \"" << row.name << "\", \"value\": " << value
          << ", \"unit\": \"" << row.unit << "\"}"
          << (i + 1 < metrics_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return static_cast<bool>(out);
  }

  [[nodiscard]] bool smoke() const { return args_.smoke; }
  [[nodiscard]] std::size_t jobs() const { return args_.jobs; }
  [[nodiscard]] const std::vector<std::size_t>& clients() const {
    return args_.clients;
  }
  [[nodiscard]] std::size_t reactor_threads() const {
    return args_.reactor_threads;
  }
  [[nodiscard]] std::size_t cooldown_ms() const { return args_.cooldown_ms; }
  /// Arm filter: true when `key` should run under --only (always true
  /// without the flag).
  [[nodiscard]] bool WantArm(const std::string& key) const {
    return args_.only.empty() || key.find(args_.only) != std::string::npos;
  }

 private:
  struct Row {
    std::string name;
    double value;
    std::string unit;
  };

  std::string bench_;
  BenchArgs args_;
  std::vector<Row> metrics_;
};

}  // namespace sbft::bench
