// Cloud configuration store: the motivating scenario from the paper's
// introduction. A fleet of services reads a shared configuration blob
// from replicated cloud storage; operators occasionally push updates.
// The storage must keep serving correct configurations through a
// Byzantine replica AND a transient corruption event (a bit-flip storm
// hitting every replica's memory and the network).
//
//   $ ./build/examples/cloud_config_store
#include <cstdio>
#include <string>

#include "core/deployment.hpp"

using namespace sbft;

namespace {

Value Config(int version) {
  const std::string text =
      "{\"feature_flags\":{\"new_ui\":" +
      std::string(version % 2 == 0 ? "true" : "false") +
      "},\"max_conns\":" + std::to_string(100 + version) +
      ",\"version\":" + std::to_string(version) + "}";
  return Value(text.begin(), text.end());
}

std::string Show(const Value& value) {
  return std::string(value.begin(), value.end());
}

}  // namespace

int main() {
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(11);  // f = 2
  options.seed = 7;
  options.n_clients = 4;  // 1 operator (writer) + 3 services (readers)
  options.byzantine[4] = ByzantineStrategy::kEquivocate;
  options.byzantine[9] = ByzantineStrategy::kNack;
  Deployment deployment(std::move(options));

  std::printf("== cloud config store: n=11 servers, f=2 Byzantine ==\n");

  // Operator pushes config v1; services read it.
  auto push = deployment.Write(0, Config(1));
  std::printf("operator pushes v1: %s\n",
              push.outcome.status == OpStatus::kOk ? "ok" : "FAILED");
  for (std::size_t service = 1; service <= 3; ++service) {
    auto read = deployment.Read(service);
    std::printf("  service %zu sees: %s\n", service,
                read.outcome.status == OpStatus::kOk
                    ? Show(read.outcome.value).c_str()
                    : "(no config)");
  }

  // Disaster: a transient fault corrupts every correct replica's memory
  // and plants garbage in all channels (the cloud provider's "internal
  // migration gone wrong" from the paper's introduction).
  std::printf("\n!! transient fault: all replica memory + channels corrupted\n");
  deployment.CorruptAllCorrectServers();
  deployment.CorruptAllChannels(2);

  // Reads during the transitory phase may abort — but they terminate,
  // and the protocol never blocks (Lemma 6).
  auto dirty = deployment.Read(1);
  std::printf("read during transitory phase: %s\n",
              dirty.outcome.status == OpStatus::kOk
                  ? ("returned " + Show(dirty.outcome.value)).c_str()
                  : "aborted (allowed before the first write)");

  // The first completed write stabilizes the register (Theorem 2):
  // no restart, no human intervention.
  auto heal = deployment.Write(0, Config(2));
  std::printf("operator pushes v2 (stabilizing write): %s\n",
              heal.outcome.status == OpStatus::kOk ? "ok" : "FAILED");

  bool all_good = heal.outcome.status == OpStatus::kOk;
  for (std::size_t service = 1; service <= 3; ++service) {
    auto read = deployment.Read(service);
    const bool good = read.outcome.status == OpStatus::kOk &&
                      read.outcome.value == Config(2);
    all_good = all_good && good;
    std::printf("  service %zu sees: %s%s\n", service,
                read.outcome.status == OpStatus::kOk
                    ? Show(read.outcome.value).c_str()
                    : "(no config)",
                good ? "" : "  <-- WRONG");
  }

  std::printf("\n%s\n", all_good
                            ? "recovered: every service reads v2 — no reboot "
                              "needed (pseudo-stabilization)"
                            : "RECOVERY FAILED");
  return all_good ? 0 : 1;
}
