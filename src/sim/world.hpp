// The discrete-event simulation world.
//
// Models the system of §II: a finite set of processes connected by
// reliable FIFO point-to-point channels under full asynchrony. The world
// owns the event queue, the channels, the trace recorder and all node
// automata; execution is single-threaded and fully deterministic given
// the seed and the delay policy.
//
// Transient faults (§II failure model) are first-class operations:
//   * CorruptNode(id)            — overwrite a node's local state;
//   * InjectGarbageFrames(...)   — plant arbitrary bytes in a channel
//                                  (corrupted channel contents);
//   * ScrambleChannel(...)       — overwrite frames already in flight.
// Byzantine behaviour is *not* a world concern: a Byzantine server is
// just an Automaton with hostile code (see core/byzantine.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/frame.hpp"
#include "common/rng.hpp"
#include "sim/delay.hpp"
#include "sim/event_queue.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace sbft {

class IEndpoint;

/// A protocol state machine. Handlers run to completion; re-entrancy is
/// impossible because the world delivers one event at a time.
class Automaton {
 public:
  virtual ~Automaton() = default;

  /// Called once when the world starts running (time 0), after any
  /// initial-state corruption has been applied.
  virtual void OnStart(IEndpoint& /*endpoint*/) {}

  /// A frame arrived on the FIFO channel from `from`. The frame may be
  /// garbage: decoding failures must be handled, never propagated.
  virtual void OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) = 0;

  virtual void OnTimer(int /*timer_id*/, IEndpoint& /*endpoint*/) {}

  /// Runtime batch boundary: a threaded backend delivers mailbox items
  /// in drained batches and brackets each non-empty batch with these
  /// hooks, so an automaton can coalesce everything it sends in
  /// response to one wakeup into shared frames (the protocol-round
  /// batching seam; see core/mux.hpp). The sim world delivers one
  /// event at a time and never calls them — handlers must therefore
  /// not depend on the hooks for correctness, only for coalescing.
  virtual void OnBatchStart(IEndpoint& /*endpoint*/) {}
  virtual void OnBatchEnd(IEndpoint& /*endpoint*/) {}

  /// Transient fault: overwrite all local protocol state with arbitrary
  /// values drawn from `rng`. Implementations must leave the object in a
  /// memory-safe (though semantically arbitrary) state.
  virtual void CorruptState(Rng& /*rng*/) {}
};

/// The interface automata use to act on the world.
class IEndpoint {
 public:
  virtual ~IEndpoint() = default;
  virtual void Send(NodeId dst, Bytes frame) = 0;

  /// Send one frame to many destinations. Quorum protocols encode a
  /// broadcast message once and hand it here; transports that can share
  /// the payload (sim world, threaded cluster, mux) override this to
  /// fan out without per-destination copies. The default routes through
  /// the virtual Send so wrapper endpoints stay correct unmodified.
  virtual void Broadcast(std::span<const NodeId> dsts, Bytes frame) {
    for (std::size_t i = 0; i + 1 < dsts.size(); ++i) {
      Send(dsts[i], Bytes(frame));
    }
    if (!dsts.empty()) Send(dsts.back(), std::move(frame));
  }

  virtual void SetTimer(VirtualTime delay, int timer_id) = 0;
  [[nodiscard]] virtual VirtualTime Now() const = 0;
  [[nodiscard]] virtual NodeId self() const = 0;
  /// Per-node deterministic randomness (forked from the world seed).
  virtual Rng& rng() = 0;
};

class World {
 public:
  struct Options {
    std::uint64_t seed = 1;
    /// Base delay policy; defaults to UniformDelay(1, 10).
    std::unique_ptr<DelayPolicy> delay;
  };

  explicit World(Options options);
  World() : World(Options{}) {}
  ~World();  // out-of-line: Endpoint is incomplete here

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Register a node; returns its id (assigned densely from 0).
  NodeId AddNode(std::unique_ptr<Automaton> automaton);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] Automaton& node(NodeId id);
  [[nodiscard]] VirtualTime now() const { return now_; }
  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  TraceRecorder& trace() { return trace_; }
  Rng& rng() { return rng_; }

  /// Deliver the next pending event. Returns false if the queue is empty.
  bool Step();

  /// Run until the event queue drains or `max_events` deliveries happen.
  /// Returns the number of events processed. Calls OnStart on nodes not
  /// yet started.
  std::uint64_t Run(std::uint64_t max_events = 10'000'000);

  /// Run until `predicate()` is true or the queue drains / cap is hit.
  /// Returns true iff the predicate held when it stopped.
  bool RunUntil(const std::function<bool()>& predicate,
                std::uint64_t max_events = 10'000'000);

  /// Schedule `fn` to run at now()+delay as a world event (used by
  /// workload drivers to start operations at chosen times).
  void ScheduleCall(VirtualTime delay, std::function<void()> fn);

  // --- Fault injection -----------------------------------------------

  /// Transient fault on a node's memory.
  void CorruptNode(NodeId id);

  /// Plant `count` frames of arbitrary bytes in channel src->dst, as if
  /// they were in flight when the execution started. FIFO order places
  /// them ahead of anything sent later.
  void InjectGarbageFrames(NodeId src, NodeId dst, std::size_t count,
                           std::size_t max_frame_size = 64);

  /// Overwrite every frame currently scheduled on src->dst with garbage
  /// of the same size (in-flight corruption).
  void ScrambleChannel(NodeId src, NodeId dst);

  /// Stop a node (client crash): pending and future frames to it are
  /// dropped, and it sends nothing further.
  void StopNode(NodeId id);
  [[nodiscard]] bool IsStopped(NodeId id) const;

  // --- Adversarial scheduling ----------------------------------------

  /// Hold all frames entering channel src->dst (they queue up, FIFO).
  /// With capture_in_flight, frames already scheduled on the channel are
  /// pulled back into the hold buffer too ("freeze the channel now") —
  /// the scripted-adversary primitive used by the Theorem 1 replay.
  void HoldChannel(NodeId src, NodeId dst, bool capture_in_flight = false);

  // --- Weak-channel emulation (data-link substrate tests) -------------

  /// Degrade channel src->dst: frames are dropped with probability
  /// `loss` and, when `unordered`, delivery order is no longer FIFO.
  /// This deliberately BREAKS the §II channel assumptions — only the
  /// data-link shim (net/datalink_shim.hpp) is expected to function on
  /// such channels; the register protocol runs on top of the shim.
  void DegradeChannel(NodeId src, NodeId dst, double loss, bool unordered);
  /// Release a held channel; buffered frames are scheduled in order.
  void ReleaseChannel(NodeId src, NodeId dst);

 private:
  /// One scheduled occurrence. Kept hot-path small (~64 bytes): the cold
  /// std::function payload of kCall events lives in the `calls_` side
  /// table, referenced through `aux`.
  struct Event {
    VirtualTime time = 0;
    std::uint64_t seq = 0;  // FIFO tie-break
    enum class Kind : std::uint8_t { kDeliver, kTimer, kCall } kind =
        Kind::kDeliver;
    NodeId src = kNoNode;
    NodeId dst = kNoNode;
    std::int32_t aux = 0;  // kTimer: timer id; kCall: slot in calls_
    Frame frame;  // move-only; broadcasts share one payload across events
  };
  struct ChannelState {
    VirtualTime last_scheduled = 0;  // enforces FIFO delivery order
    bool held = false;
    std::deque<Frame> held_frames;
    double loss = 0.0;       // DegradeChannel
    bool unordered = false;  // DegradeChannel
  };
  class Endpoint;  // concrete IEndpoint bound to one node

  void EnqueueDelivery(NodeId src, NodeId dst, Frame frame);
  void StartPendingNodes();
  /// Node ids are dense from 0, so registered channels live in a flat
  /// dim×dim table. Corrupted automata can address arbitrary NodeIds;
  /// those rare out-of-range channels fall back to a sparse map.
  ChannelState& Channel(NodeId src, NodeId dst) {
    if (src < channel_dim_ && dst < channel_dim_) {
      return channel_table_[src * channel_dim_ + dst];
    }
    return channel_fallback_[{src, dst}];
  }
  void GrowChannelTable(std::size_t dim);

  Rng rng_;
  std::unique_ptr<DelayPolicy> delay_;
  VirtualTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  CalendarQueue<Event> queue_;
  std::vector<std::function<void()>> calls_;  // kCall side table
  std::vector<std::uint32_t> free_call_slots_;
  std::vector<std::unique_ptr<Automaton>> nodes_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::vector<bool> stopped_;
  std::vector<bool> started_;
  std::vector<ChannelState> channel_table_;  // dim×dim, row = src
  std::size_t channel_dim_ = 0;
  std::map<std::pair<NodeId, NodeId>, ChannelState> channel_fallback_;
  TraceRecorder trace_;
  NetworkStats stats_;
};

}  // namespace sbft
