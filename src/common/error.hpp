// Error handling primitives shared across sbftreg.
//
// The codebase uses exceptions only for programmer errors (assertion
// failures); expected runtime failures (e.g. decoding a corrupted frame)
// are reported through Result<T>.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace sbft {

/// Thrown when an internal invariant is violated. Indicates a bug in
/// sbftreg itself, never a recoverable protocol condition.
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::logic_error("sbftreg invariant violation: " + what) {}
};

[[noreturn]] inline void RaiseInvariant(const char* expr, const char* file,
                                        int line) {
  throw InvariantViolation(std::string(expr) + " at " + file + ":" +
                           std::to_string(line));
}

/// Assert an internal invariant. Active in all build types: the protocol
/// automata are cheap relative to message handling and silent state
/// corruption is exactly what this project studies, so we never want
/// checks compiled out.
#define SBFT_ASSERT(expr)                                 \
  do {                                                    \
    if (!(expr)) {                                        \
      ::sbft::RaiseInvariant(#expr, __FILE__, __LINE__);  \
    }                                                     \
  } while (false)

/// Minimal expected-like result: either a value or an error message.
/// Used at trust boundaries (wire decoding, user input) where failure is
/// a normal outcome.
template <typename T>
class Result {
 public:
  static Result Ok(T value) { return Result(std::move(value)); }
  static Result Err(std::string message) {
    Result r;
    r.error_ = std::move(message);
    return r;
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Precondition: ok().
  const T& value() const& {
    SBFT_ASSERT(value_.has_value());
    return *value_;
  }
  T&& value() && {
    SBFT_ASSERT(value_.has_value());
    return std::move(*value_);
  }

  /// Precondition: !ok().
  const std::string& error() const {
    SBFT_ASSERT(!value_.has_value());
    return error_;
  }

 private:
  Result() = default;
  explicit Result(T value) : value_(std::move(value)) {}

  std::optional<T> value_;
  std::string error_;
};

}  // namespace sbft
