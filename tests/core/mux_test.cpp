// Multi-register multiplexing: independent registers over one server
// population, concurrent per-register operations, isolation, bounded
// tables, and full fault tolerance per register.
#include "core/mux.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "sim/world.hpp"

namespace sbft {
namespace {

Value Val(const std::string& text) { return Value(text.begin(), text.end()); }

struct MuxRig {
  explicit MuxRig(std::uint64_t seed, std::size_t max_registers = 1024,
                  bool one_byzantine = false) {
    World::Options world_options;
    world_options.seed = seed;
    world = std::make_unique<World>(std::move(world_options));
    config = ProtocolConfig::ForServers(6);
    for (std::size_t i = 0; i < 6; ++i) {
      MuxServer::ServerFactory factory;
      if (one_byzantine && i == 2) {
        factory = [this, i](RegisterId id) {
          return MakeByzantineServer(ByzantineStrategy::kStaleReplay,
                                     config, i, id);
        };
      }
      auto server = std::make_unique<MuxServer>(config, i, max_registers,
                                                std::move(factory));
      servers.push_back(server.get());
      server_ids.push_back(world->AddNode(std::move(server)));
    }
    auto client_owner =
        std::make_unique<MuxClient>(config, server_ids, 100, max_registers);
    client = client_owner.get();
    client_id = world->AddNode(std::move(client_owner));
    world->RunUntil([] { return true; }, 0);
  }

  bool Put(const std::string& key, const Value& value) {
    bool done = false, ok = false;
    client->Put(key, value, [&](const WriteOutcome& outcome) {
      ok = outcome.status == OpStatus::kOk;
      done = true;
    });
    world->RunUntil([&] { return done; }, 1'000'000);
    return done && ok;
  }
  ReadOutcome Get(const std::string& key) {
    ReadOutcome result;
    bool done = false;
    client->Get(key, [&](const ReadOutcome& outcome) {
      result = outcome;
      done = true;
    });
    world->RunUntil([&] { return done; }, 1'000'000);
    return result;
  }

  std::unique_ptr<World> world;
  ProtocolConfig config;
  std::vector<MuxServer*> servers;
  std::vector<NodeId> server_ids;
  MuxClient* client = nullptr;
  NodeId client_id = 0;
};

TEST(Mux, PutGetSingleKey) {
  MuxRig rig(1);
  ASSERT_TRUE(rig.Put("alpha", Val("1")));
  auto got = rig.Get("alpha");
  ASSERT_EQ(got.status, OpStatus::kOk);
  EXPECT_EQ(got.value, Val("1"));
}

TEST(Mux, KeysAreIsolated) {
  MuxRig rig(2);
  ASSERT_TRUE(rig.Put("a", Val("va")));
  ASSERT_TRUE(rig.Put("b", Val("vb")));
  ASSERT_TRUE(rig.Put("c", Val("vc")));
  EXPECT_EQ(rig.Get("a").value, Val("va"));
  EXPECT_EQ(rig.Get("b").value, Val("vb"));
  EXPECT_EQ(rig.Get("c").value, Val("vc"));
  // Overwriting one key leaves the others untouched.
  ASSERT_TRUE(rig.Put("b", Val("vb2")));
  EXPECT_EQ(rig.Get("a").value, Val("va"));
  EXPECT_EQ(rig.Get("b").value, Val("vb2"));
  EXPECT_EQ(rig.Get("c").value, Val("vc"));
}

TEST(Mux, ConcurrentOpsOnDistinctKeys) {
  // Operations on different registers proceed in parallel through one
  // client automaton.
  MuxRig rig(3);
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    rig.client->Put("key" + std::to_string(i),
                    Val("v" + std::to_string(i)),
                    [&](const WriteOutcome& outcome) {
                      EXPECT_EQ(outcome.status, OpStatus::kOk);
                      ++done;
                    });
  }
  ASSERT_TRUE(rig.world->RunUntil([&] { return done == 5; }, 2'000'000));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(rig.Get("key" + std::to_string(i)).value,
              Val("v" + std::to_string(i)));
  }
}

TEST(Mux, ByzantinePerRegisterMasked) {
  MuxRig rig(4, 1024, /*one_byzantine=*/true);
  for (int i = 0; i < 5; ++i) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(rig.Put(key, Val("val" + std::to_string(i))));
    auto got = rig.Get(key);
    ASSERT_EQ(got.status, OpStatus::kOk);
    EXPECT_EQ(got.value, Val("val" + std::to_string(i)));
  }
}

TEST(Mux, ServerTableBoundedByLru) {
  MuxRig rig(5, /*max_registers=*/4);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(rig.Put("key" + std::to_string(i), Val("x")));
  }
  for (MuxServer* server : rig.servers) {
    EXPECT_LE(server->register_count(), 4u);
  }
  // Hot keys survive; a long-evicted key reads as unwritten/aborted or
  // fresh initial state — equivalent to a transient fault on that
  // register, never a wrong certified value.
  ASSERT_TRUE(rig.Put("hot", Val("still-here")));
  EXPECT_EQ(rig.Get("hot").value, Val("still-here"));
  auto cold = rig.Get("key0");
  if (cold.status == OpStatus::kOk) {
    EXPECT_NE(cold.value, Val("wrong"));
  }
}

TEST(Mux, TransientCorruptionHealsPerRegister) {
  MuxRig rig(6);
  ASSERT_TRUE(rig.Put("k", Val("before")));
  for (std::size_t i = 0; i < 6; ++i) {
    rig.world->CorruptNode(rig.server_ids[i]);
  }
  ASSERT_TRUE(rig.Put("k", Val("after")));
  for (int i = 0; i < 3; ++i) {
    auto got = rig.Get("k");
    ASSERT_EQ(got.status, OpStatus::kOk);
    EXPECT_EQ(got.value, Val("after"));
  }
}

TEST(Mux, BareFramesIgnored) {
  MuxRig rig(7);
  // Un-wrapped protocol frames and garbage at a mux server: dropped.
  rig.world->InjectGarbageFrames(rig.client_id, rig.server_ids[0], 20);
  rig.world->Run();
  ASSERT_TRUE(rig.Put("k", Val("fine")));
  EXPECT_EQ(rig.Get("k").value, Val("fine"));
}

TEST(Mux, RegisterIdOfIsStable) {
  EXPECT_EQ(RegisterIdOf("users/42"), RegisterIdOf("users/42"));
  EXPECT_NE(RegisterIdOf("users/42"), RegisterIdOf("users/43"));
}

}  // namespace
}  // namespace sbft
