// Long-horizon soak: hundreds of operations across deployment sizes,
// fault cocktails and Byzantine mixes, every history checked. This is
// the "leave it running overnight" test at CI scale.
#include <gtest/gtest.h>

#include "spec/regular_checker.hpp"
#include "spec/workload.hpp"

namespace sbft {
namespace {

struct SoakCase {
  std::uint32_t n;
  std::uint32_t byzantine_count;
  bool corrupt;
  std::uint64_t seed;
};

class Soak : public ::testing::TestWithParam<SoakCase> {};

TEST_P(Soak, LongWorkloadStaysRegular) {
  const SoakCase& param = GetParam();
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(param.n);
  options.seed = param.seed;
  options.n_clients = 3;
  for (std::uint32_t b = 0; b < param.byzantine_count; ++b) {
    options.byzantine[b * 2 + 1] = kAllByzantineStrategies[
        (param.seed + b) % std::size(kAllByzantineStrategies)];
  }
  Deployment deployment(std::move(options));
  if (param.corrupt) {
    deployment.CorruptAllCorrectServers();
    deployment.CorruptAllChannels(1);
  }

  WorkloadOptions workload;
  workload.ops_per_client = 60;  // 180 operations total
  workload.seed = param.seed * 7 + param.n;
  auto result = RunConcurrentWorkload(deployment, workload);
  ASSERT_TRUE(result.all_completed);

  CheckOptions check;
  check.stabilized_from = result.first_write_done;
  check.grandfathered_values = {Value{}};
  auto report = CheckRegular(result.history, check);
  EXPECT_TRUE(report.ok) << report.Summary();

  // Operational health: overwhelming majority of ops succeed.
  std::size_t ok = 0;
  for (const auto& op : result.history.ops()) {
    if (op.result == OpRecord::Result::kOk) ++ok;
  }
  EXPECT_GE(ok, result.history.size() * 9 / 10);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, Soak,
    ::testing::Values(SoakCase{6, 0, false, 1}, SoakCase{6, 1, false, 2},
                      SoakCase{6, 1, true, 3}, SoakCase{11, 2, false, 4},
                      SoakCase{11, 2, true, 5}, SoakCase{16, 3, false, 6},
                      SoakCase{16, 3, true, 7}),
    [](const auto& param_info) {
      const SoakCase& param = param_info.param;
      return "n" + std::to_string(param.n) + "_byz" +
             std::to_string(param.byzantine_count) +
             (param.corrupt ? "_corrupt" : "_clean") + "_seed" +
             std::to_string(param.seed);
    });

TEST(SoakSingleWriter, SwmrHundredsOfWrites) {
  // The paper's SWMR core: one writer, two readers, 300 writes with
  // interleaved reads — bounded labels wrap multiple times.
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.seed = 42;
  options.n_clients = 3;
  options.byzantine[4] = ByzantineStrategy::kStaleReplay;
  Deployment deployment(std::move(options));

  for (int i = 0; i < 300; ++i) {
    const Value value{static_cast<std::uint8_t>(i & 0xFF),
                      static_cast<std::uint8_t>(i >> 8)};
    auto write = deployment.Write(0, value);
    ASSERT_TRUE(write.completed) << i;
    ASSERT_EQ(write.outcome.status, OpStatus::kOk) << i;
    if (i % 3 == 0) {
      auto read = deployment.Read(1 + (i / 3) % 2);
      ASSERT_TRUE(read.completed) << i;
      ASSERT_EQ(read.outcome.status, OpStatus::kOk) << i;
      ASSERT_EQ(read.outcome.value, value) << i;
    }
  }
}

}  // namespace
}  // namespace sbft
