// Fuzz campaigns: seeded loops of generate -> run -> check -> shrink.
//
// A campaign is the model-checking-lite workhorse: hundreds of seeded
// scenarios drawn from the generator, each executed deterministically
// and judged against the regular-register specification. Violations in
// safe topologies (n > 5f) are protocol bugs and fail the campaign;
// violations in sub-resilient topologies (n = 5f, only generated on
// request) are Theorem 1 made executable — they are shrunk to minimal
// repros and reported with replay tokens, but expected.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/generator.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/shrink.hpp"

namespace sbft::fuzz {

struct CampaignOptions {
  std::uint64_t seed = 1;
  std::size_t runs = 100;
  GeneratorOptions generator;
  /// Shrink violating scenarios before reporting (costs extra runs).
  bool do_shrink = true;
  std::size_t shrink_budget = 300;
  /// Worker threads for scenario execution. Results are identical for
  /// every value: scenarios are generated sequentially from the campaign
  /// rng, executed in parallel batches, and their outcomes processed in
  /// run-index order. 0 = one per hardware core.
  std::size_t jobs = 1;
  /// Wall-clock cap in seconds; 0 = none. The --smoke CI mode sets this
  /// and a large run count, taking whatever coverage the budget buys.
  double budget_seconds = 0.0;
  /// Progress/violation stream (nullptr = silent).
  std::ostream* out = nullptr;
  bool verbose = false;
};

struct ViolationRecord {
  Scenario original;
  Scenario shrunk;         // == original when shrinking is off/failed
  std::string token;       // replay token of the shrunk scenario
  std::string first_violation;
  bool sub_resilient = false;
  std::size_t run_index = 0;
  std::size_t shrink_attempts = 0;
  std::size_t shrink_accepted = 0;
};

struct CampaignResult {
  std::size_t runs_executed = 0;
  std::size_t stalled = 0;   // event cap hit (liveness observation)
  std::size_t vacuous = 0;   // no read fell inside the checked suffix
  std::vector<ViolationRecord> violations;

  /// Violations in n > 5f topologies — genuine bugs.
  [[nodiscard]] std::size_t safe_violations() const {
    std::size_t count = 0;
    for (const auto& v : violations) {
      if (!v.sub_resilient) count++;
    }
    return count;
  }
  [[nodiscard]] std::size_t sub_resilience_violations() const {
    return violations.size() - safe_violations();
  }
};

[[nodiscard]] CampaignResult RunCampaign(const CampaignOptions& options);

/// The curated corpus: hand-designed scenarios pinning the shapes the
/// test suite must keep passing (E1-E8 analogues plus fuzz-found
/// near-misses). sbft_fuzz --write-corpus serializes these to token
/// files under tests/fuzz/corpus/, which the fuzz_corpus_test ctest
/// suite replays. All entries are safe topologies expected to produce
/// zero post-stabilization violations.
struct CorpusEntry {
  std::string name;
  std::string comment;
  Scenario scenario;
};
[[nodiscard]] std::vector<CorpusEntry> CuratedCorpus();

}  // namespace sbft::fuzz
