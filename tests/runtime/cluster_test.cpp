// Threaded-runtime tests: the same automata that run in the simulator
// must work on real threads (mailboxes) and over TCP loopback.
#include "runtime/register_cluster.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <future>
#include <string>
#include <thread>

#include "runtime/mailbox.hpp"

namespace sbft {
namespace {

Value Val(const std::string& text) { return Value(text.begin(), text.end()); }

TEST(Mailbox, PushPopFifo) {
  Mailbox mailbox;
  for (int i = 0; i < 10; ++i) {
    mailbox.Push(
        MailItem{static_cast<NodeId>(i), Frame(Bytes{(std::uint8_t)i}), {}});
  }
  for (int i = 0; i < 10; ++i) {
    auto item = mailbox.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(item->src, static_cast<NodeId>(i));
  }
}

TEST(Mailbox, CloseUnblocksConsumer) {
  Mailbox mailbox;
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    auto item = mailbox.Pop();
    EXPECT_FALSE(item.has_value());
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  mailbox.Close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(Mailbox, PushAfterCloseRejected) {
  Mailbox mailbox;
  mailbox.Close();
  EXPECT_FALSE(mailbox.Push(MailItem{}));
}

TEST(Mailbox, DrainSwapsWholeQueueInOrder) {
  Mailbox mailbox;
  for (int i = 0; i < 10; ++i) {
    mailbox.Push(
        MailItem{static_cast<NodeId>(i), Frame(Bytes{(std::uint8_t)i}), {}});
  }
  std::deque<MailItem> batch;
  ASSERT_TRUE(mailbox.Drain(batch));
  ASSERT_EQ(batch.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(batch[static_cast<std::size_t>(i)].src,
              static_cast<NodeId>(i));
  }
  EXPECT_EQ(mailbox.size(), 0u);  // queue fully swapped out
}

TEST(Mailbox, DrainReturnsFalseWhenClosedAndEmpty) {
  Mailbox mailbox;
  mailbox.Push(MailItem{3, Frame(Bytes{1}), {}});
  mailbox.Close();
  std::deque<MailItem> batch;
  EXPECT_TRUE(mailbox.Drain(batch));  // pending item still delivered
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_FALSE(mailbox.Drain(batch));  // closed and drained
}

TEST(Mailbox, PushBatchIsOneBurst) {
  Mailbox mailbox;
  std::vector<MailItem> burst;
  for (int i = 0; i < 5; ++i) {
    burst.push_back(
        MailItem{static_cast<NodeId>(i), Frame(Bytes{(std::uint8_t)i}), {}});
  }
  ASSERT_TRUE(mailbox.PushBatch(std::move(burst)));
  std::deque<MailItem> batch;
  ASSERT_TRUE(mailbox.Drain(batch));
  ASSERT_EQ(batch.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(batch[static_cast<std::size_t>(i)].src,
              static_cast<NodeId>(i));
  }
  mailbox.Close();
  std::vector<MailItem> rejected;
  rejected.push_back(MailItem{});
  EXPECT_FALSE(mailbox.PushBatch(std::move(rejected)));
}

TEST(ThreadClusterTest, InprocWriteRead) {
  RegisterCluster::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.n_clients = 1;
  RegisterCluster cluster(std::move(options));
  cluster.Start();

  auto write = cluster.Write(0, Val("threaded"));
  ASSERT_EQ(write.status, OpStatus::kOk);
  auto read = cluster.Read(0);
  ASSERT_EQ(read.status, OpStatus::kOk);
  EXPECT_EQ(read.value, Val("threaded"));
  cluster.Stop();
}

TEST(ThreadClusterTest, InprocManyOpsTwoClients) {
  RegisterCluster::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.n_clients = 2;
  RegisterCluster cluster(std::move(options));
  cluster.Start();

  for (int i = 0; i < 20; ++i) {
    const Value value = Val("op" + std::to_string(i));
    auto write = cluster.Write(i % 2, value);
    ASSERT_EQ(write.status, OpStatus::kOk) << i;
    auto read = cluster.Read((i + 1) % 2);
    ASSERT_EQ(read.status, OpStatus::kOk) << i;
    EXPECT_EQ(read.value, value) << i;
  }
  cluster.Stop();
}

TEST(ThreadClusterTest, InprocWithByzantine) {
  RegisterCluster::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.byzantine[2] = ByzantineStrategy::kStaleReplay;
  options.n_clients = 1;
  RegisterCluster cluster(std::move(options));
  cluster.Start();

  for (int i = 0; i < 5; ++i) {
    const Value value = Val("byz" + std::to_string(i));
    ASSERT_EQ(cluster.Write(0, value).status, OpStatus::kOk);
    auto read = cluster.Read(0);
    ASSERT_EQ(read.status, OpStatus::kOk);
    EXPECT_EQ(read.value, value);
  }
  cluster.Stop();
}

TEST(ThreadClusterTest, ConcurrentClientsFromThreads) {
  RegisterCluster::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.n_clients = 3;
  RegisterCluster cluster(std::move(options));
  cluster.Start();

  std::atomic<int> ok{0};
  std::vector<std::thread> drivers;
  for (int c = 0; c < 3; ++c) {
    drivers.emplace_back([&, c] {
      for (int i = 0; i < 10; ++i) {
        const Value value =
            Val("c" + std::to_string(c) + "#" + std::to_string(i));
        if (cluster.Write(static_cast<std::size_t>(c), value).status ==
            OpStatus::kOk) {
          ok.fetch_add(1);
        }
        auto read = cluster.Read(static_cast<std::size_t>(c));
        if (read.status == OpStatus::kOk) ok.fetch_add(1);
      }
    });
  }
  for (auto& driver : drivers) driver.join();
  // Concurrency may fail a few writes through retry exhaustion, but the
  // vast majority of operations must succeed.
  EXPECT_GE(ok.load(), 50);
  cluster.Stop();
}

TEST(ThreadClusterTest, TcpWriteRead) {
  RegisterCluster::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.use_tcp = true;
  options.n_clients = 1;
  RegisterCluster cluster(std::move(options));
  cluster.Start();

  for (int i = 0; i < 5; ++i) {
    const Value value = Val("tcp" + std::to_string(i));
    auto write = cluster.Write(0, value);
    ASSERT_EQ(write.status, OpStatus::kOk) << i;
    auto read = cluster.Read(0);
    ASSERT_EQ(read.status, OpStatus::kOk) << i;
    EXPECT_EQ(read.value, value) << i;
  }
  cluster.Stop();
}

TEST(ThreadClusterTest, TcpWithMultipleReactorThreads) {
  RegisterCluster::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.use_tcp = true;
  options.reactor_threads = 3;
  options.n_clients = 2;
  RegisterCluster cluster(std::move(options));
  cluster.Start();

  for (int i = 0; i < 5; ++i) {
    const Value value = Val("rt" + std::to_string(i));
    ASSERT_EQ(cluster.Write(i % 2, value).status, OpStatus::kOk) << i;
    auto read = cluster.Read(i % 2);
    ASSERT_EQ(read.status, OpStatus::kOk) << i;
    EXPECT_EQ(read.value, value) << i;
  }
  cluster.Stop();
}

TEST(ThreadClusterTest, AsyncApiCompletesOnNodeThread) {
  RegisterCluster::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.n_clients = 1;
  RegisterCluster cluster(std::move(options));
  cluster.Start();

  std::promise<ReadOutcome> done;
  cluster.AsyncWrite(0, Val("async"), [&](const WriteOutcome& write) {
    EXPECT_EQ(write.status, OpStatus::kOk);
    // Issue the dependent read from the completion callback — the
    // closed-loop pattern the bench generator uses.
    cluster.AsyncRead(0, [&](const ReadOutcome& read) {
      done.set_value(read);
    });
  });
  auto future = done.get_future();
  ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  auto read = future.get();
  EXPECT_EQ(read.status, OpStatus::kOk);
  EXPECT_EQ(read.value, Val("async"));
  cluster.Stop();
}

}  // namespace
}  // namespace sbft
