#include "load/scenario.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sbft::load {

std::vector<ScheduledOp> BuildSchedule(const Scenario& scenario) {
  SBFT_ASSERT(scenario.n_keys > 0);
  // Independent child streams per concern: changing e.g. the mix does
  // not reshuffle arrival times.
  Rng root(scenario.seed);
  Rng arrival_rng = root.Fork();
  Rng key_rng = root.Fork();
  Rng kind_rng = root.Fork();

  std::vector<RatePhase> phases = scenario.phases;
  if (phases.empty()) {
    phases.push_back({scenario.duration_us, scenario.rate_ops_per_sec});
  }

  ZipfGenerator keys(scenario.n_keys, scenario.zipf_skew, key_rng);
  std::vector<std::uint32_t> next_seq(scenario.n_keys, 0);
  std::vector<ScheduledOp> schedule;

  std::uint64_t phase_start = 0;
  PoissonProcess arrivals(phases.front().rate_per_sec, arrival_rng);
  for (std::size_t p = 0; p < phases.size(); ++p) {
    const RatePhase& phase = phases[p];
    SBFT_ASSERT(phase.rate_per_sec > 0.0);
    arrivals.SetRate(phase.rate_per_sec);
    arrivals.ResetTo(phase_start);  // memoryless restart, exact
    const std::uint64_t phase_end = phase_start + phase.duration_us;
    while (true) {
      const std::uint64_t at = arrivals.NextArrivalUs();
      if (at >= phase_end) break;  // arrival falls into the next phase
      ScheduledOp op;
      op.at_us = at;
      op.key = static_cast<std::uint32_t>(keys.Next());
      op.is_write = !kind_rng.NextBool(scenario.read_fraction);
      if (op.is_write) op.seq = next_seq[op.key]++;
      schedule.push_back(op);
    }
    phase_start = phase_end;
  }
  return schedule;
}

Value ValueFor(const ScheduledOp& op) {
  const std::string text =
      "k" + std::to_string(op.key) + "#" + std::to_string(op.seq);
  return Value(text.begin(), text.end());
}

RegisterCluster::Options ClusterOptionsFor(const Scenario& scenario) {
  RegisterCluster::Options options;
  options.config = ProtocolConfig::ForServers(scenario.n_servers);
  options.use_tcp = scenario.use_tcp;
  options.multiplex = true;
  options.n_clients = scenario.n_keys;
  options.seed = scenario.seed;
  options.shaping = scenario.shaping;
  options.batch_max_ops = scenario.batch_max_ops;
  options.batch_max_delay_us = scenario.batch_max_delay_us;
  return options;
}

ShardedCluster::Options ShardedOptionsFor(const Scenario& scenario) {
  ShardedCluster::Options options;
  options.group = ClusterOptionsFor(scenario);
  options.n_groups = scenario.n_groups;
  return options;
}

namespace {

Scenario Base(const char* name, double rate, std::uint64_t duration_us,
              std::uint64_t seed) {
  Scenario scenario;
  scenario.name = name;
  scenario.rate_ops_per_sec = rate;
  scenario.duration_us = duration_us;
  scenario.seed = seed;
  return scenario;
}

}  // namespace

Scenario BaselineScenario(double rate, std::uint64_t duration_us,
                          std::uint64_t seed) {
  return Base("baseline", rate, duration_us, seed);
}

Scenario ZipfHotScenario(double rate, std::uint64_t duration_us,
                         std::uint64_t seed) {
  Scenario scenario = Base("zipf_hot", rate, duration_us, seed);
  scenario.zipf_skew = 1.2;
  return scenario;
}

Scenario FlashCrowdScenario(double base_rate, std::uint64_t duration_us,
                            std::uint64_t seed) {
  Scenario scenario = Base("flash_crowd", base_rate, duration_us, seed);
  const std::uint64_t fifth = duration_us / 5;
  scenario.phases = {
      {2 * fifth, base_rate},
      {fifth, 4.0 * base_rate},
      {duration_us - 3 * fifth, base_rate},
  };
  return scenario;
}

Scenario ReadHeavyScenario(double rate, std::uint64_t duration_us,
                           std::uint64_t seed) {
  Scenario scenario = Base("read_heavy", rate, duration_us, seed);
  scenario.read_fraction = 0.9;
  return scenario;
}

Scenario SlowLinkScenario(double rate, std::uint64_t duration_us,
                          std::uint64_t delay_us, std::uint64_t seed) {
  Scenario scenario = Base("slow_link", rate, duration_us, seed);
  scenario.shaping.delay_us = delay_us;
  scenario.shaping.jitter_us = delay_us / 4;
  return scenario;
}

Scenario CorruptionScenario(double rate, std::uint64_t duration_us,
                            std::uint64_t seed) {
  Scenario scenario = Base("corruption", rate, duration_us, seed);
  scenario.corruptions.push_back({duration_us / 4, {}});
  return scenario;
}

Scenario ShardedScenario(std::size_t n_groups, double rate,
                         std::uint64_t duration_us, std::uint64_t seed) {
  Scenario scenario = Base(("g" + std::to_string(n_groups)).c_str(), rate,
                           duration_us, seed);
  scenario.n_groups = n_groups;
  return scenario;
}

Scenario MigrateScenario(double rate, std::uint64_t duration_us,
                         std::uint64_t seed) {
  Scenario scenario = Base("g2_migrate", rate, duration_us, seed);
  scenario.n_groups = 1;
  scenario.group_add_at_us = duration_us / 3;
  return scenario;
}

}  // namespace sbft::load
