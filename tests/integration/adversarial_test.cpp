// Integration tests with scripted adversarial schedules against the
// paper's protocol: held quorums, slow-server reads, partition-ish
// delays, corruption storms mid-run. The asynchronous model demands
// correctness for every delay assignment — these pick nasty ones on
// purpose.
#include <gtest/gtest.h>

#include <string>

#include "core/deployment.hpp"
#include "spec/regular_checker.hpp"
#include "spec/workload.hpp"

namespace sbft {
namespace {

Value Val(const std::string& text) { return Value(text.begin(), text.end()); }

TEST(Adversarial, WriteBlocksUntilQuorumReleased) {
  // Hold f+1 servers' reply channels: only n-(f+1) = 4f servers can
  // answer, below the n-f quorum — the write must NOT complete; release
  // one channel and it must.
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.seed = 201;
  Deployment deployment(std::move(options));
  World& world = deployment.world();

  for (std::size_t s = 0; s < 2; ++s) {  // f+1 = 2 servers held
    world.HoldChannel(deployment.server_node(s), deployment.client_node(0));
  }
  bool done = false;
  deployment.client(0).StartWrite(Val("gated"),
                                  [&](const WriteOutcome&) { done = true; });
  world.Run(2'000'000);
  EXPECT_FALSE(done) << "write completed without a quorum";

  world.ReleaseChannel(deployment.server_node(0), deployment.client_node(0));
  world.Run(2'000'000);
  EXPECT_TRUE(done) << "write failed to complete once a quorum existed";
}

TEST(Adversarial, ReadBlocksWithoutQuorumThenCompletes) {
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.seed = 202;
  Deployment deployment(std::move(options));
  World& world = deployment.world();
  ASSERT_TRUE(deployment.Write(0, Val("v")).completed);

  for (std::size_t s = 0; s < 2; ++s) {
    world.HoldChannel(deployment.server_node(s), deployment.client_node(0));
  }
  bool done = false;
  ReadOutcome outcome;
  deployment.client(0).StartRead([&](const ReadOutcome& o) {
    outcome = o;
    done = true;
  });
  world.Run(2'000'000);
  EXPECT_FALSE(done);

  world.ReleaseChannel(deployment.server_node(0), deployment.client_node(0));
  world.Run(2'000'000);
  ASSERT_TRUE(done);
  EXPECT_EQ(outcome.status, OpStatus::kOk);
  EXPECT_EQ(outcome.value, Val("v"));
}

TEST(Adversarial, StragglersDeliveringYearsLaterAreHarmless) {
  // Freeze one server's replies across MANY operations, then release
  // the whole backlog at once: every stale frame must be discarded and
  // the next operations stay regular.
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.seed = 203;
  Deployment deployment(std::move(options));
  World& world = deployment.world();

  world.HoldChannel(deployment.server_node(5), deployment.client_node(0));
  for (int i = 0; i < 12; ++i) {
    const Value value{static_cast<std::uint8_t>(i)};
    ASSERT_TRUE(deployment.Write(0, value).completed) << i;
    ASSERT_TRUE(deployment.Read(0).completed) << i;
  }
  world.ReleaseChannel(deployment.server_node(5), deployment.client_node(0));
  world.Run();  // the backlog floods in

  const Value last{11};
  for (int i = 0; i < 3; ++i) {
    auto read = deployment.Read(0);
    ASSERT_EQ(read.outcome.status, OpStatus::kOk);
    EXPECT_EQ(read.outcome.value, last);
  }
}

TEST(Adversarial, CorruptionStormMidWorkload) {
  // Repeated transient faults DURING a running workload. Between storms
  // there is always a completing write, so each storm's suffix must be
  // regular. We check the suffix after the LAST storm.
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.seed = 204;
  options.n_clients = 2;
  Deployment deployment(std::move(options));

  VirtualTime last_storm_heal = 0;
  for (int storm = 0; storm < 3; ++storm) {
    WorkloadOptions workload;
    workload.ops_per_client = 6;
    workload.seed = 300 + static_cast<std::uint64_t>(storm);
    (void)RunConcurrentWorkload(deployment, workload);

    deployment.CorruptAllCorrectServers();
    deployment.CorruptAllChannels(1);
    auto heal = deployment.Write(0, Val("heal" + std::to_string(storm)));
    ASSERT_TRUE(heal.completed);
    ASSERT_EQ(heal.outcome.status, OpStatus::kOk);
    last_storm_heal = heal.returned_at;
  }

  WorkloadOptions final_workload;
  final_workload.ops_per_client = 10;
  final_workload.seed = 400;
  auto result = RunConcurrentWorkload(deployment, final_workload);
  ASSERT_TRUE(result.all_completed);
  CheckOptions check;
  check.stabilized_from = last_storm_heal;
  check.grandfathered_values = {Val("heal2")};
  auto report = CheckRegular(result.history, check);
  EXPECT_TRUE(report.ok) << report.Summary();
}

TEST(Adversarial, ExtremeDelaySkewStaysRegular) {
  // One server is 100x slower than the rest on every channel.
  class SkewDelay final : public DelayPolicy {
   public:
    VirtualTime Sample(NodeId src, NodeId dst, VirtualTime,
                       Rng& rng) override {
      const bool slow = src == 3 || dst == 3;
      return static_cast<VirtualTime>(
          rng.NextInRange(slow ? 200 : 1, slow ? 400 : 10));
    }
  };
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.seed = 205;
  options.delay = std::make_unique<SkewDelay>();
  options.n_clients = 2;
  Deployment deployment(std::move(options));

  WorkloadOptions workload;
  workload.ops_per_client = 15;
  workload.seed = 500;
  auto result = RunConcurrentWorkload(deployment, workload);
  ASSERT_TRUE(result.all_completed);
  CheckOptions check;
  check.stabilized_from = result.first_write_done;
  check.grandfathered_values = {Value{}};
  auto report = CheckRegular(result.history, check);
  EXPECT_TRUE(report.ok) << report.Summary();
}

TEST(Adversarial, ByzantineQuorumParticipationCannotFakeValue) {
  // All f Byzantine servers collude on a single forged (value, ts) and
  // answer every read with it. With only f witnesses the forgery never
  // certifies.
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(11);  // f = 2
  options.seed = 206;
  options.byzantine[1] = ByzantineStrategy::kStaleReplay;
  options.byzantine[7] = ByzantineStrategy::kStaleReplay;
  Deployment deployment(std::move(options));

  for (int i = 0; i < 8; ++i) {
    const Value value = Val("truth" + std::to_string(i));
    ASSERT_TRUE(deployment.Write(0, value).completed);
    auto read = deployment.Read(0);
    ASSERT_EQ(read.outcome.status, OpStatus::kOk);
    EXPECT_EQ(read.outcome.value, value);
  }
}

}  // namespace
}  // namespace sbft
