// E7: wall-clock throughput and latency on the threaded runtime
// (real OS threads; in-process mailboxes vs TCP loopback), n sweep and
// client-count sweep. This is the "threads/sockets" arm of the
// reproduction — absolute numbers are machine-dependent; the shape to
// check is the mailbox-vs-TCP gap and the linear-in-n message cost
// showing up as latency.
#include <chrono>
#include <string>
#include <thread>

#include "bench_json.hpp"
#include "bench_util.hpp"
#include "runtime/register_cluster.hpp"

using namespace sbft;
using namespace sbft::bench;

namespace {

struct Numbers {
  double ops_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  int failed = 0;
};

Numbers RunArm(std::uint32_t n, std::size_t n_clients, bool use_tcp,
               int ops_per_client) {
  RegisterCluster::Options options;
  options.config = ProtocolConfig::ForServers(n);
  options.use_tcp = use_tcp;
  options.n_clients = n_clients;
  RegisterCluster cluster(std::move(options));
  cluster.Start();

  using Clock = std::chrono::steady_clock;
  std::vector<double> latencies_us(
      static_cast<std::size_t>(ops_per_client) * n_clients * 2);
  std::vector<int> failures(n_clients, 0);

  const auto t_begin = Clock::now();
  std::vector<std::thread> drivers;
  for (std::size_t c = 0; c < n_clients; ++c) {
    drivers.emplace_back([&, c] {
      for (int i = 0; i < ops_per_client; ++i) {
        const std::string text =
            "c" + std::to_string(c) + "#" + std::to_string(i);
        const Value value(text.begin(), text.end());
        auto t0 = Clock::now();
        auto write = cluster.Write(c, value);
        auto t1 = Clock::now();
        auto read = cluster.Read(c);
        auto t2 = Clock::now();
        const std::size_t base = (c * ops_per_client + i) * 2;
        latencies_us[base] =
            std::chrono::duration<double, std::micro>(t1 - t0).count();
        latencies_us[base + 1] =
            std::chrono::duration<double, std::micro>(t2 - t1).count();
        if (write.status != OpStatus::kOk || read.status != OpStatus::kOk) {
          failures[c]++;
        }
      }
    });
  }
  for (auto& driver : drivers) driver.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t_begin).count();
  cluster.Stop();

  Numbers numbers;
  numbers.ops_per_sec = latencies_us.size() / seconds;
  numbers.p50_us = Percentile(latencies_us, 0.5);
  numbers.p99_us = Percentile(latencies_us, 0.99);
  for (int f : failures) numbers.failed += f;
  return numbers;
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport report("throughput", ParseBenchArgs(argc, argv));
  const int ops = report.smoke() ? 10 : 40;
  Header("E7", "threaded runtime throughput (ops = writes+reads)");
  Row("%-4s %-8s %-9s | %-12s %-10s %-10s %-7s", "n", "clients", "transport",
      "ops/s", "p50 us", "p99 us", "failed");
  for (std::uint32_t n : {6u, 11u, 16u}) {
    for (std::size_t clients : {std::size_t{1}, std::size_t{2}}) {
      auto inproc = RunArm(n, clients, /*use_tcp=*/false, ops);
      Row("%-4u %-8zu %-9s | %-12.0f %-10.0f %-10.0f %-7d", n, clients,
          "mailbox", inproc.ops_per_sec, inproc.p50_us, inproc.p99_us,
          inproc.failed);
      const std::string key = "mailbox.n" + std::to_string(n) + ".c" +
                              std::to_string(clients);
      report.Metric(key + ".ops_per_sec", inproc.ops_per_sec, "ops/s");
      report.Metric(key + ".p99_us", inproc.p99_us, "us");
      report.Metric(key + ".failed", inproc.failed, "ops");
    }
  }
  // TCP arm kept small: sockets * n^2 on one box. n=16 is the worst
  // case the trajectory tracks (256 sockets, the paper's largest sweep
  // point); its failed count guards against accept-backlog drops.
  for (std::uint32_t n : {6u, 11u, 16u}) {
    auto tcp = RunArm(n, 1, /*use_tcp=*/true, report.smoke() ? 8 : 25);
    Row("%-4u %-8d %-9s | %-12.0f %-10.0f %-10.0f %-7d", n, 1, "tcp",
        tcp.ops_per_sec, tcp.p50_us, tcp.p99_us, tcp.failed);
    const std::string key = "tcp.n" + std::to_string(n) + ".c1";
    report.Metric(key + ".ops_per_sec", tcp.ops_per_sec, "ops/s");
    report.Metric(key + ".p99_us", tcp.p99_us, "us");
    report.Metric(key + ".failed", tcp.failed, "ops");
  }
  Row("%s", "\nexpected shape: latency grows roughly linearly with n "
            "(Theta(n) frames/op on one core); TCP pays a constant "
            "per-frame syscall premium over mailboxes; no failed ops.");
  return report.Flush() ? 0 : 1;
}
