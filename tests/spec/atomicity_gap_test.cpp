// How far is the implementation from ATOMIC? The paper promises only
// regularity (new/old inversions between reads concurrent with a write
// are allowed by the spec). These tests measure the gap empirically:
// the union-graph head election plus convergent server adoption turn
// out to prevent inversions across every randomized schedule we throw
// at them — a strictly-stronger-in-practice result worth recording
// (the checker itself is unit-tested on hand-made inverted histories).
#include <gtest/gtest.h>

#include "spec/regular_checker.hpp"
#include "spec/workload.hpp"

namespace sbft {
namespace {

OpRecord Op(OpRecord::Kind kind, std::uint32_t client, VirtualTime from,
            VirtualTime to, const std::string& value) {
  OpRecord op;
  op.kind = kind;
  op.result = OpRecord::Result::kOk;
  op.client = client;
  op.invoked_at = from;
  op.returned_at = to;
  op.value = Bytes(value.begin(), value.end());
  return op;
}

TEST(AtomicityGapChecker, DetectsHandMadeInversion) {
  History history;
  history.Add(Op(OpRecord::Kind::kWrite, 0, 0, 10, "old"));
  history.Add(Op(OpRecord::Kind::kWrite, 0, 20, 30, "new"));
  // r1 sees "new", then a strictly-later r2 sees "old": inversion.
  history.Add(Op(OpRecord::Kind::kRead, 1, 40, 50, "new"));
  history.Add(Op(OpRecord::Kind::kRead, 1, 60, 70, "old"));
  auto report = CheckNoNewOldInversion(history);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.Summary().find("inversion"), std::string::npos);
}

TEST(AtomicityGapChecker, AcceptsMonotoneReads) {
  History history;
  history.Add(Op(OpRecord::Kind::kWrite, 0, 0, 10, "old"));
  history.Add(Op(OpRecord::Kind::kWrite, 0, 20, 30, "new"));
  history.Add(Op(OpRecord::Kind::kRead, 1, 40, 50, "old"));  // stale-ish
  history.Add(Op(OpRecord::Kind::kRead, 1, 60, 70, "new"));
  EXPECT_TRUE(CheckNoNewOldInversion(history).ok);
}

TEST(AtomicityGapChecker, ConcurrentReadsNotJudged) {
  History history;
  history.Add(Op(OpRecord::Kind::kWrite, 0, 0, 10, "old"));
  history.Add(Op(OpRecord::Kind::kWrite, 0, 20, 60, "new"));
  // The reads overlap each other: no precedence, no inversion verdict.
  history.Add(Op(OpRecord::Kind::kRead, 1, 30, 55, "new"));
  history.Add(Op(OpRecord::Kind::kRead, 2, 40, 58, "old"));
  EXPECT_TRUE(CheckNoNewOldInversion(history).ok);
}

class AtomicityGapSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(AtomicityGapSweep, NoInversionsObservedInPractice) {
  const auto [n, seed] = GetParam();
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(n);
  options.seed = static_cast<std::uint64_t>(seed) + 4200;
  options.n_clients = 3;
  if (seed % 2 == 0) {
    options.byzantine[2] = kAllByzantineStrategies[
        static_cast<std::size_t>(seed) % std::size(kAllByzantineStrategies)];
  }
  Deployment deployment(std::move(options));

  WorkloadOptions workload;
  workload.ops_per_client = 25;
  workload.max_think_time = 4;
  workload.seed = static_cast<std::uint64_t>(seed) * 19 + n;
  auto result = RunConcurrentWorkload(deployment, workload);
  ASSERT_TRUE(result.all_completed);

  CheckOptions check;
  check.stabilized_from = result.first_write_done;
  auto report = CheckNoNewOldInversion(result.history, check);
  EXPECT_TRUE(report.ok) << report.Summary();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AtomicityGapSweep,
    ::testing::Combine(::testing::Values(6u, 11u),
                       ::testing::Values(1, 2, 3, 4, 5, 6)),
    [](const auto& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace sbft
