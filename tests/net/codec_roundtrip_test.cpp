// Codec round-trip property test: every wire type in the Message
// variant must survive encode -> decode -> re-encode with the re-encoded
// frame byte-identical to the first. This pins the table-driven codec to
// the wire format — a field added to a struct but missed in its
// EncodeInto/DecodeFrom pair, or an ordering change between them, fails
// here before it can corrupt a cross-version trace.
#include "net/message.hpp"

#include <gtest/gtest.h>

#include <variant>
#include <vector>

#include "common/rng.hpp"
#include "labels/bounded_label.hpp"
#include "labels/labeling_system.hpp"

namespace sbft {
namespace {

// One randomized instance of every variant alternative. Value-bearing
// messages hold views, so each sample's bytes live in an arena owned by
// the set; views target the Bytes' heap buffers, which stay put even if
// the arena vector reallocates.
class SampleSet {
 public:
  explicit SampleSet(std::uint64_t seed) : rng_(seed), system_(6) {
    arena_.reserve(64);

    // Core protocol (Figures 1-3).
    Add(GetTsMsg{Op()});
    Add(TsReplyMsg{Ts(), Op()});
    Add(WriteMsg{Val(), Ts(), Op()});
    Add(WriteReplyMsg{rng_.NextBelow(2) == 0, Op()});
    Add(ReadMsg{Op()});
    ReplyMsg reply;
    reply.value = Val();
    reply.ts = Ts();
    const std::size_t history = rng_.NextBelow(4);
    reply.old_vals.reserve(history);
    for (std::size_t i = 0; i < history; ++i) {
      reply.old_vals.push_back(WireVersioned{Val(), Ts()});
    }
    reply.label = Op();
    Add(reply);
    Add(CompleteReadMsg{Op()});
    Add(FlushMsg{Op(), Scope()});
    Add(FlushAckMsg{Op(), Scope()});

    // ABD baseline.
    Add(AbdReadMsg{Rid()});
    Add(AbdReadReplyMsg{Rid(), Uts(), Val()});
    Add(AbdWriteMsg{Rid(), Uts(), Val()});
    Add(AbdWriteAckMsg{Rid()});
    Add(AbdGetTsMsg{Rid()});
    Add(AbdTsReplyMsg{Rid(), Uts()});

    // Non-stabilizing BFT baseline.
    Add(BuGetTsMsg{Rid()});
    Add(BuTsReplyMsg{Rid(), Uts()});
    Add(BuWriteMsg{Rid(), Uts(), Val()});
    Add(BuWriteAckMsg{Rid()});
    Add(BuReadMsg{Rid()});
    Add(BuReadReplyMsg{Rid(), Uts(), Val()});

    // Naive quorum baseline.
    Add(NqGetTsMsg{Rid()});
    Add(NqTsReplyMsg{Rid(), Ts()});
    Add(NqWriteMsg{Rid(), Ts(), Val()});
    Add(NqWriteAckMsg{Rid()});
    Add(NqReadMsg{Rid()});
    Add(NqReadReplyMsg{Rid(), Ts(), Val()});

    // Mux envelope around a genuine inner frame.
    Add(MuxMsg{Rid(), Own(EncodeMessage(Message(ReadMsg{Op()})))});

    // Batched mux envelope: a random number of sub-frames (possibly
    // zero — an empty batch is legal on the wire) over genuine inner
    // encodes of different phases.
    MuxBatchMsg batch;
    const std::size_t items = rng_.NextBelow(5);
    batch.items.reserve(items);
    for (std::size_t i = 0; i < items; ++i) {
      const Bytes inner =
          rng_.NextBelow(2) == 0
              ? EncodeMessage(Message(FlushMsg{Op(), Scope()}))
              : EncodeMessage(Message(WriteMsg{Val(), Ts(), Op()}));
      batch.items.push_back(MuxItem{Rid(), Own(inner)});
    }
    Add(std::move(batch));

    // Node-level shared FLUSH round and its echo: a random number of
    // per-register flush items (possibly zero).
    NodeFlushMsg node_flush;
    const std::size_t flushes = rng_.NextBelow(5);
    node_flush.items.reserve(flushes);
    for (std::size_t i = 0; i < flushes; ++i) {
      node_flush.items.push_back(FlushItem{Rid(), Op(), Scope()});
    }
    NodeFlushAckMsg node_flush_ack;
    node_flush_ack.items = node_flush.items;
    Add(std::move(node_flush));
    Add(std::move(node_flush_ack));
  }

  const std::vector<Message>& messages() const { return messages_; }

 private:
  template <typename T>
  void Add(T msg) {
    messages_.push_back(Message(std::move(msg)));
  }

  BytesView Own(Bytes bytes) {
    arena_.push_back(std::move(bytes));
    return arena_.back();
  }
  // Sometimes empty: zero-length values are legal on the wire.
  BytesView Val() { return Own(RandomBytes(rng_, rng_.NextBelow(65))); }
  OpLabel Op() { return static_cast<OpLabel>(rng_()); }
  std::uint64_t Rid() { return rng_(); }
  OpScope Scope() {
    return rng_.NextBelow(2) == 0 ? OpScope::kRead : OpScope::kWrite;
  }
  // The codec carries timestamps verbatim — garbage labels (transient
  // faults) must round-trip just like valid ones.
  Timestamp Ts() {
    Label label = rng_.NextBelow(2) == 0
                      ? RandomValidLabel(rng_, system_.params())
                      : RandomGarbageLabel(rng_, system_.params());
    return Timestamp{std::move(label),
                     static_cast<ClientId>(rng_.NextBelow(1000))};
  }
  UnboundedTs Uts() {
    return UnboundedTs{rng_(), static_cast<std::uint32_t>(rng_())};
  }

  Rng rng_;
  LabelingSystem system_;
  std::vector<Bytes> arena_;
  std::vector<Message> messages_;
};

TEST(CodecRoundTrip, SampleSetCoversEveryVariantAlternative) {
  SampleSet samples(1);
  constexpr std::size_t kAlternatives = std::variant_size_v<Message>;
  ASSERT_EQ(samples.messages().size(), kAlternatives);
  std::vector<bool> seen(kAlternatives, false);
  for (const Message& message : samples.messages()) {
    EXPECT_FALSE(seen[message.index()])
        << "duplicate sample for " << MessageTypeName(message);
    seen[message.index()] = true;
  }
}

TEST(CodecRoundTrip, EncodeDecodeReencodeByteIdentical) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SampleSet samples(seed);
    for (const Message& message : samples.messages()) {
      const Bytes wire = EncodeMessage(message);
      auto decoded = DecodeMessage(wire);
      ASSERT_TRUE(decoded.ok())
          << MessageTypeName(message) << " seed " << seed << ": "
          << decoded.error();
      EXPECT_EQ(decoded.value().index(), message.index())
          << MessageTypeName(message) << " seed " << seed;
      EXPECT_EQ(MessageTypeName(decoded.value()), MessageTypeName(message));
      // The decoded message's views borrow `wire`, still in scope here.
      const Bytes rewire = EncodeMessage(decoded.value());
      EXPECT_EQ(rewire, wire)
          << MessageTypeName(message) << " seed " << seed
          << ": re-encode diverged";
    }
  }
}

TEST(CodecRoundTrip, RepeatedEncodesThroughPoolAreIdentical) {
  // Encoding draws buffers from the thread-local frame pool; reuse of a
  // previously released (larger) buffer must not leak stale bytes.
  SampleSet samples(7);
  for (const Message& message : samples.messages()) {
    const Bytes first = EncodeMessage(message);
    const Bytes second = EncodeMessage(message);
    EXPECT_EQ(first, second) << MessageTypeName(message);
  }
}

TEST(CodecRoundTrip, MuxEnvelopeMatchesGenericEncode) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const Bytes inner = RandomBytes(rng, rng.NextBelow(200));
    const std::uint64_t id = rng();
    const Bytes fast = EncodeMuxEnvelope(id, inner);
    const Bytes generic = EncodeMessage(Message(MuxMsg{id, inner}));
    EXPECT_EQ(fast, generic) << "iteration " << i;
  }
}

TEST(CodecRoundTrip, MuxBatchBuilderMatchesGenericEncode) {
  // The incremental builder (count prefix patched at Take) must produce
  // exactly the frame the generic encode of the equivalent MuxBatchMsg
  // does, for any item sequence.
  Rng rng(13);
  MuxBatchBuilder builder;  // reused across iterations, like in the mux
  for (int i = 0; i < 50; ++i) {
    const std::size_t items = 1 + rng.NextBelow(8);
    std::vector<Bytes> arena;
    arena.reserve(items);
    MuxBatchMsg batch;
    for (std::size_t item = 0; item < items; ++item) {
      arena.push_back(RandomBytes(rng, rng.NextBelow(100)));
      const std::uint64_t id = rng();
      builder.Add(id, arena.back());
      batch.items.push_back(MuxItem{id, arena.back()});
    }
    EXPECT_EQ(builder.count(), items);
    const Bytes fast = builder.Take();
    EXPECT_TRUE(builder.empty());
    const Bytes generic = EncodeMessage(Message(std::move(batch)));
    EXPECT_EQ(fast, generic) << "iteration " << i;
  }
}

}  // namespace
}  // namespace sbft
