// Per-strategy unit tests: each Byzantine server behaves as specified
// (the sweep tests in protocol_test.cpp check the register masks them;
// these check the strategies actually attack).
#include "core/byzantine.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "sim/world.hpp"

namespace sbft {
namespace {

// Scripted prober reused from server tests. The script is encoded at
// construction (value-bearing messages carry views of the caller's
// still-live storage); replies decode from the retained raw frames so
// their views outlive the world's recycled buffers.
class Scripted final : public Automaton {
 public:
  Scripted(NodeId target, const std::vector<Message>& script)
      : target_(target) {
    frames_.reserve(script.size());
    for (const Message& message : script) {
      frames_.push_back(EncodeMessage(message));
    }
  }
  void OnStart(IEndpoint& endpoint) override {
    for (const Bytes& frame : frames_) {
      endpoint.Send(target_, frame);
    }
  }
  void OnFrame(NodeId, BytesView frame, IEndpoint&) override {
    raw_frames.push_back(Bytes(frame.begin(), frame.end()));
    auto decoded = DecodeMessage(raw_frames.back());
    if (decoded.ok()) replies.push_back(std::move(decoded).value());
  }
  std::vector<Message> replies;
  std::vector<Bytes> raw_frames;

 private:
  NodeId target_;
  std::vector<Bytes> frames_;
};

struct Rig {
  Rig(ByzantineStrategy strategy, std::vector<Message> script) {
    auto config = ProtocolConfig::ForServers(6);
    auto server = MakeByzantineServer(strategy, config, 0, /*seed=*/5);
    byz = server.get();
    const NodeId id = world.AddNode(std::move(server));
    auto probe_owner = std::make_unique<Scripted>(id, std::move(script));
    probe = probe_owner.get();
    world.AddNode(std::move(probe_owner));
    world.Run();
  }
  World world;
  RegisterServer* byz;
  Scripted* probe;
};

Timestamp FreshTs() {
  LabelingSystem system(6);
  return Timestamp{system.Next(std::vector<Label>{system.Initial()}), 7};
}

TEST(ByzantineStrategies, SilentNeverReplies) {
  Rig rig(ByzantineStrategy::kSilent,
          {Message(GetTsMsg{1}), Message(ReadMsg{0}),
           Message(FlushMsg{0, OpScope::kRead})});
  EXPECT_TRUE(rig.probe->raw_frames.empty());
}

TEST(ByzantineStrategies, GarbageRepliesWithNoise) {
  Rig rig(ByzantineStrategy::kGarbage,
          {Message(GetTsMsg{1}), Message(ReadMsg{0})});
  EXPECT_GE(rig.probe->raw_frames.size(), 2u);  // bursts per message
}

TEST(ByzantineStrategies, StaleReplayFreezesItsStory) {
  // Two reads after a write: both replies must carry the same frozen
  // pair, and the write must be "ACKed" without adoption.
  Rig rig(ByzantineStrategy::kStaleReplay,
          {Message(ReadMsg{0}), Message(WriteMsg{Value{9}, FreshTs(), 1}),
           Message(ReadMsg{1})});
  const ReplyMsg* first = nullptr;
  const ReplyMsg* second = nullptr;
  bool acked = false;
  for (const Message& message : rig.probe->replies) {
    if (const auto* reply = std::get_if<ReplyMsg>(&message)) {
      (first == nullptr ? first : second) = reply;
    } else if (const auto* wr = std::get_if<WriteReplyMsg>(&message)) {
      acked = wr->ack;
    }
  }
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_TRUE(acked);  // the lie
  EXPECT_TRUE(SameBytes(first->value, second->value));
  EXPECT_EQ(first->ts, second->ts);
  EXPECT_FALSE(SameBytes(first->value, Value{9}));  // never adopted
}

TEST(ByzantineStrategies, EquivocatorForgesValuesUnderRealTimestamp) {
  const Timestamp ts = FreshTs();
  Rig rig(ByzantineStrategy::kEquivocate,
          {Message(WriteMsg{Value{9}, ts, 1}), Message(ReadMsg{0}),
           Message(ReadMsg{1})});
  std::vector<const ReplyMsg*> replies;
  for (const Message& message : rig.probe->replies) {
    if (const auto* reply = std::get_if<ReplyMsg>(&message)) {
      replies.push_back(reply);
    }
  }
  ASSERT_GE(replies.size(), 2u);
  for (const ReplyMsg* reply : replies) {
    EXPECT_EQ(reply->ts, ts);              // the legitimate timestamp...
    EXPECT_FALSE(SameBytes(reply->value, Value{9}));  // ...forged value
  }
  // Different readers (here: different reads) get different forgeries.
  EXPECT_FALSE(SameBytes(replies[0]->value, replies[1]->value));
}

TEST(ByzantineStrategies, NackRefusesEverythingButAnswers) {
  Rig rig(ByzantineStrategy::kNack,
          {Message(GetTsMsg{1}), Message(WriteMsg{Value{9}, FreshTs(), 2}),
           Message(GetTsMsg{3})});
  int nacks = 0;
  std::vector<Timestamp> reported;
  for (const Message& message : rig.probe->replies) {
    if (const auto* wr = std::get_if<WriteReplyMsg>(&message)) {
      nacks += wr->ack ? 0 : 1;
    } else if (const auto* tr = std::get_if<TsReplyMsg>(&message)) {
      reported.push_back(tr->ts);
    }
  }
  EXPECT_EQ(nacks, 1);
  ASSERT_EQ(reported.size(), 2u);
  EXPECT_EQ(reported[0], reported[1]);  // fixed private timestamp
}

TEST(ByzantineStrategies, MuteAnswersOnlyFlush) {
  Rig rig(ByzantineStrategy::kMute,
          {Message(FlushMsg{2, OpScope::kRead}), Message(GetTsMsg{1}),
           Message(ReadMsg{0}), Message(WriteMsg{Value{9}, FreshTs(), 1})});
  ASSERT_EQ(rig.probe->replies.size(), 1u);
  const auto* ack = std::get_if<FlushAckMsg>(&rig.probe->replies[0]);
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(ack->label, 2u);
}

TEST(ByzantineStrategies, FactoryCoversAllStrategiesWithNames) {
  auto config = ProtocolConfig::ForServers(6);
  for (ByzantineStrategy strategy : kAllByzantineStrategies) {
    auto server = MakeByzantineServer(strategy, config, 0, 1);
    EXPECT_NE(server, nullptr);
    EXPECT_STRNE(ByzantineStrategyName(strategy), "unknown");
  }
}

}  // namespace
}  // namespace sbft
