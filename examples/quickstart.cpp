// Quickstart: emulate a stabilizing BFT MWMR regular register with
// n = 6 servers (tolerating f = 1 Byzantine) inside the deterministic
// simulator, write a value, read it back.
//
//   $ ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "core/deployment.hpp"

using namespace sbft;

int main() {
  // 1. Configure a deployment: n = 6 servers is the smallest that
  //    satisfies the paper's n > 5f bound with f = 1.
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.seed = 42;        // every run is reproducible from the seed
  options.n_clients = 2;    // two clients: a writer and a reader

  // Make server 3 Byzantine, replaying stale state forever — the
  // protocol must mask it.
  options.byzantine[3] = ByzantineStrategy::kStaleReplay;

  Deployment deployment(std::move(options));
  std::printf("deployment: n=%u f=%u quorum=%u witness-threshold=%u\n",
              deployment.config().n, deployment.config().f,
              deployment.config().Quorum(),
              deployment.config().WitnessThreshold());

  // 2. Client 0 writes.
  const std::string text = "hello, stabilizing register";
  auto write = deployment.Write(0, Value(text.begin(), text.end()));
  if (write.outcome.status != OpStatus::kOk) {
    std::printf("write failed!\n");
    return 1;
  }
  std::printf("write ok: ts=%s frames=%llu virtual-latency=%llu ticks\n",
              write.outcome.ts.ToString().c_str(),
              static_cast<unsigned long long>(write.frames_sent),
              static_cast<unsigned long long>(write.returned_at -
                                              write.invoked_at));

  // 3. Client 1 reads — and must see the write despite the Byzantine
  //    server (Theorem 2/3).
  auto read = deployment.Read(1);
  if (read.outcome.status != OpStatus::kOk) {
    std::printf("read did not return a value!\n");
    return 1;
  }
  std::printf("read ok:  \"%s\" (union graph used: %s)\n",
              std::string(read.outcome.value.begin(),
                          read.outcome.value.end())
                  .c_str(),
              read.outcome.used_union_graph ? "yes" : "no");

  // 4. Inspect server states: at least 3f+1 correct servers hold the
  //    written value (Lemma 2).
  std::size_t holders = 0;
  for (std::size_t i = 0; i < deployment.config().n; ++i) {
    if (!deployment.is_byzantine(i) &&
        deployment.server(i).current().value ==
            Value(text.begin(), text.end())) {
      ++holders;
    }
  }
  std::printf("servers holding the value: %zu (>= 3f+1 = %u expected)\n",
              holders, 3 * deployment.config().f + 1);
  return 0;
}
