// Client automaton edge cases: write retries under scripted rivalry,
// retry exhaustion, mid-operation transient faults, hostile inputs.
#include <gtest/gtest.h>

#include <string>

#include "core/deployment.hpp"

namespace sbft {
namespace {

Value Val(const std::string& text) { return Value(text.begin(), text.end()); }

TEST(ClientEdge, RivalWriteForcesRetryAndBothSucceed) {
  // Scripted rivalry: writer A's WRITE frames are frozen in flight
  // while writer B completes a full write; on release the servers have
  // moved on and NACK A, forcing A through the retry path.
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.seed = 70;
  options.n_clients = 2;
  Deployment deployment(std::move(options));
  World& world = deployment.world();

  ASSERT_TRUE(deployment.Write(0, Val("base")).completed);

  bool a_done = false;
  WriteOutcome a_outcome;
  deployment.client(0).StartWrite(Val("A"), [&](const WriteOutcome& o) {
    a_outcome = o;
    a_done = true;
  });
  // Let A compute its timestamp (GET_TS phase completes), then freeze
  // every WRITE frame it has in flight.
  world.RunUntil([&] {
    return world.stats().frames_sent > 30;  // flush+get_ts done
  }, 100'000);
  for (std::size_t s = 0; s < 6; ++s) {
    world.HoldChannel(deployment.client_node(0), deployment.server_node(s),
                      /*capture_in_flight=*/true);
  }
  // B writes to completion.
  auto b = deployment.Write(1, Val("B"));
  ASSERT_TRUE(b.completed);
  ASSERT_EQ(b.outcome.status, OpStatus::kOk);
  // Release A's frames; A must recover (possibly via retries).
  for (std::size_t s = 0; s < 6; ++s) {
    world.ReleaseChannel(deployment.client_node(0),
                         deployment.server_node(s));
  }
  ASSERT_TRUE(world.RunUntil([&] { return a_done; }, 2'000'000));
  EXPECT_EQ(a_outcome.status, OpStatus::kOk);

  // The register ends in a consistent state: some read returns A or B
  // (whichever the serialization puts last), consistently.
  auto read1 = deployment.Read(1);
  auto read2 = deployment.Read(0);
  ASSERT_EQ(read1.outcome.status, OpStatus::kOk);
  ASSERT_EQ(read2.outcome.status, OpStatus::kOk);
  EXPECT_EQ(read1.outcome.value, read2.outcome.value);
  EXPECT_TRUE(read1.outcome.value == Val("A") ||
              read1.outcome.value == Val("B"));
}

TEST(ClientEdge, RetryLimitZeroReproducesBlockingSemantics) {
  // With write_retry_limit = 0 and a scripted rival, the writer fails
  // outright instead of retrying (the paper's literal wait semantics
  // would block; we surface kFailed).
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.config.write_retry_limit = 0;
  options.seed = 71;
  options.n_clients = 2;
  Deployment deployment(std::move(options));
  World& world = deployment.world();
  ASSERT_TRUE(deployment.Write(0, Val("base")).completed);

  bool a_done = false;
  WriteOutcome a_outcome;
  deployment.client(0).StartWrite(Val("A"), [&](const WriteOutcome& o) {
    a_outcome = o;
    a_done = true;
  });
  world.RunUntil([&] { return world.stats().frames_sent > 30; }, 100'000);
  for (std::size_t s = 0; s < 6; ++s) {
    world.HoldChannel(deployment.client_node(0), deployment.server_node(s),
                      true);
  }
  ASSERT_TRUE(deployment.Write(1, Val("B")).completed);
  for (std::size_t s = 0; s < 6; ++s) {
    world.ReleaseChannel(deployment.client_node(0),
                         deployment.server_node(s));
  }
  ASSERT_TRUE(world.RunUntil([&] { return a_done; }, 2'000'000));
  // Either the WRITE landed before B everywhere (ok) or it was NACKed
  // and, with no retries allowed, failed.
  EXPECT_TRUE(a_outcome.status == OpStatus::kOk ||
              a_outcome.status == OpStatus::kFailed);
  if (a_outcome.status == OpStatus::kFailed) {
    EXPECT_EQ(a_outcome.retries, 0u);
  }
}

TEST(ClientEdge, MidOperationCorruptionReportsFailure) {
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.seed = 72;
  Deployment deployment(std::move(options));
  World& world = deployment.world();

  bool done = false;
  OpStatus status = OpStatus::kOk;
  deployment.client(0).StartWrite(Val("doomed"), [&](const WriteOutcome& o) {
    status = o.status;
    done = true;
  });
  world.RunUntil([&] { return world.stats().frames_sent > 3; }, 1'000);
  deployment.CorruptClient(0);  // destroys the in-flight operation
  EXPECT_TRUE(done);            // callback fired synchronously
  EXPECT_EQ(status, OpStatus::kFailed);
  EXPECT_TRUE(deployment.client(0).idle());

  // The client works again immediately.
  auto write = deployment.Write(0, Val("alive"));
  ASSERT_TRUE(write.completed);
  EXPECT_EQ(write.outcome.status, OpStatus::kOk);
}

TEST(ClientEdge, FramesFromUnknownNodesIgnored) {
  // A frame from a node that is not a register server must be dropped
  // before decoding (clients only trust their server set).
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.seed = 73;
  options.n_clients = 2;
  Deployment deployment(std::move(options));
  World& world = deployment.world();

  // Frames attributed to the *other client's* id (not a server) must be
  // dropped by the server-set check before any decoding happens.
  world.InjectGarbageFrames(deployment.client_node(1),
                            deployment.client_node(0), 10);
  world.Run();

  auto write = deployment.Write(0, Val("fine"));
  ASSERT_TRUE(write.completed);
  auto read = deployment.Read(0);
  EXPECT_EQ(read.outcome.value, Val("fine"));
}

TEST(ClientEdge, StaleRepliesAreCountedAndIgnored) {
  // After operations complete, late replies keep arriving (quorum is
  // n-f, not n). They must be ignored and tallied.
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(11);  // more stragglers
  options.seed = 74;
  Deployment deployment(std::move(options));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        deployment.Write(0, Value{static_cast<std::uint8_t>(i)}).completed);
    ASSERT_TRUE(deployment.Read(0).completed);
  }
  deployment.world().Run();  // drain stragglers
  EXPECT_GT(deployment.client(0).stats().stale_replies_ignored, 0u);
  EXPECT_EQ(deployment.client(0).stats().writes_ok, 10u);
  EXPECT_EQ(deployment.client(0).stats().reads_ok, 10u);
}

TEST(ClientEdge, EpochAblationStillWorksSequentially) {
  // The paper-pure label matching must behave identically on benign
  // sequential histories.
  Deployment::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.config.epoch_extended_op_labels = false;
  options.seed = 75;
  Deployment deployment(std::move(options));
  for (int i = 0; i < 12; ++i) {
    const Value value{static_cast<std::uint8_t>(i)};
    ASSERT_TRUE(deployment.Write(0, value).completed);
    auto read = deployment.Read(0);
    ASSERT_EQ(read.outcome.status, OpStatus::kOk);
    EXPECT_EQ(read.outcome.value, value);
  }
}

}  // namespace
}  // namespace sbft
