// Pipelined client multiplexing: many logical clients, each its own
// register behind the mux envelope, share one client node and one TCP
// connection per server. Operations of different logical clients
// interleave freely on the wire; each logical client must still see
// ITS operations complete in issue order with read-your-writes.
//
// The batched variants run the same workloads with protocol-round
// batching enabled (RegisterCluster::Options::batch_max_ops): frames of
// many registers coalesce into shared MuxBatch rounds, and the recorded
// history must still pass the per-key regular-register checker.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "load/stabilization.hpp"
#include "runtime/register_cluster.hpp"
#include "spec/history.hpp"

namespace sbft {
namespace {

Value Val(const std::string& text) { return Value(text.begin(), text.end()); }

struct PipelineRun {
  struct PerClient {
    std::vector<std::string> reads;  // value seen by read i
    int completed_pairs = 0;
  };
  std::vector<PerClient> state;
  int failures = 0;
  History history;  // every op, stamped with wall-clock microseconds
};

// Drives `n_clients` logical clients, each running `pairs` write+read
// pairs as an async closed loop (next op issued from the completion
// callback). All callbacks run on the mux client node's thread. Also
// records the run as a History (OpRecord::client = logical client) so
// callers can run the per-key regularity checker over it.
PipelineRun RunPipelinedWorkload(RegisterCluster::Options options,
                                 std::size_t n_clients, int pairs) {
  options.n_clients = n_clients;
  RegisterCluster cluster(std::move(options));
  EXPECT_TRUE(cluster.multiplexed());
  cluster.Start();
  const auto start = std::chrono::steady_clock::now();
  auto now_us = [start] {
    return static_cast<VirtualTime>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  };

  PipelineRun run;
  run.state.resize(n_clients);
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t done_clients = 0;
  std::atomic<int> failures{0};

  // One mutually recursive pair of injectors per logical client.
  std::function<void(std::size_t, int)> inject_write = [&](std::size_t c,
                                                           int i) {
    const std::string text = "c" + std::to_string(c) + "#" + std::to_string(i);
    OpRecord write_rec;
    write_rec.kind = OpRecord::Kind::kWrite;
    write_rec.client = static_cast<std::uint32_t>(c);
    write_rec.invoked_at = now_us();
    write_rec.value = Val(text);
    cluster.AsyncWrite(c, Val(text), [&, c, i, text,
                                      write_rec](const WriteOutcome& write) {
      if (write.status != OpStatus::kOk) failures.fetch_add(1);
      {
        std::lock_guard<std::mutex> lock(mutex);
        OpRecord done = write_rec;
        done.returned_at = now_us();
        done.result = write.status == OpStatus::kOk ? OpRecord::Result::kOk
                                                    : OpRecord::Result::kFailed;
        run.history.Add(std::move(done));
      }
      OpRecord read_rec;
      read_rec.kind = OpRecord::Kind::kRead;
      read_rec.client = static_cast<std::uint32_t>(c);
      read_rec.invoked_at = now_us();
      cluster.AsyncRead(c, [&, c, i, text, read_rec](const ReadOutcome& read) {
        if (read.status != OpStatus::kOk) failures.fetch_add(1);
        {
          std::lock_guard<std::mutex> lock(mutex);
          OpRecord done = read_rec;
          done.returned_at = now_us();
          done.result = read.status == OpStatus::kOk
                            ? OpRecord::Result::kOk
                            : OpRecord::Result::kAborted;
          done.value = read.value;
          run.history.Add(std::move(done));
          run.state[c].reads.emplace_back(read.value.begin(),
                                          read.value.end());
          run.state[c].completed_pairs = i + 1;
        }
        if (i + 1 < pairs) {
          inject_write(c, i + 1);
          return;
        }
        std::lock_guard<std::mutex> lock(mutex);
        ++done_clients;
        done_cv.notify_one();
      });
    });
  };
  for (std::size_t c = 0; c < n_clients; ++c) inject_write(c, 0);

  {
    std::unique_lock<std::mutex> lock(mutex);
    EXPECT_TRUE(done_cv.wait_for(lock, std::chrono::seconds(60), [&] {
      return done_clients == n_clients;
    })) << "pipelined clients did not finish";
  }
  cluster.Stop();
  run.failures = failures.load();
  return run;
}

// Read i follows write i with nothing in between on a single-writer
// register, so it must return exactly value i — the per-client ordering
// guarantee across the shared connection (and, batched, across shared
// rounds).
void ExpectPerClientOrdering(const PipelineRun& run, std::size_t n_clients,
                             int pairs) {
  EXPECT_EQ(run.failures, 0);
  for (std::size_t c = 0; c < n_clients; ++c) {
    ASSERT_EQ(run.state[c].completed_pairs, pairs) << "client " << c;
    ASSERT_EQ(run.state[c].reads.size(), static_cast<std::size_t>(pairs));
    for (int i = 0; i < pairs; ++i) {
      EXPECT_EQ(run.state[c].reads[static_cast<std::size_t>(i)],
                "c" + std::to_string(c) + "#" + std::to_string(i))
          << "client " << c << " op " << i;
    }
  }
}

TEST(MuxPipeline, SixtyFourClientsPreservePerClientOrdering) {
  RegisterCluster::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.use_tcp = true;
  options.multiplex = true;
  const PipelineRun run = RunPipelinedWorkload(std::move(options), 64, 5);
  ExpectPerClientOrdering(run, 64, 5);
}

// The mailbox transport must give the identical guarantee (the mux
// layer, not the socket, provides per-client ordering).
TEST(MuxPipeline, InprocMultiplexedClientsReadTheirWrites) {
  constexpr std::size_t kClients = 16;
  RegisterCluster::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.multiplex = true;
  options.n_clients = kClients;
  RegisterCluster cluster(std::move(options));
  cluster.Start();
  for (std::size_t c = 0; c < kClients; ++c) {
    const Value value = Val("v" + std::to_string(c));
    ASSERT_EQ(cluster.Write(c, value).status, OpStatus::kOk);
  }
  for (std::size_t c = 0; c < kClients; ++c) {
    auto read = cluster.Read(c);
    ASSERT_EQ(read.status, OpStatus::kOk);
    EXPECT_EQ(read.value, Val("v" + std::to_string(c))) << c;
  }
  cluster.Stop();
}

// ---- Protocol-round batching -----------------------------------------

TEST(MuxPipeline, BatchedTcpClientsOrderedAndRegular) {
  RegisterCluster::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.use_tcp = true;
  options.multiplex = true;
  options.batch_max_ops = 16;
  options.batch_max_delay_us = 200;
  const PipelineRun run = RunPipelinedWorkload(std::move(options), 64, 5);
  ExpectPerClientOrdering(run, 64, 5);
  const CheckReport report = load::CheckRegularPerKey(run.history, {});
  EXPECT_TRUE(report.ok) << report.Summary();
}

TEST(MuxPipeline, BatchedInprocClientsOrderedAndRegular) {
  RegisterCluster::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.multiplex = true;
  options.batch_max_ops = 8;
  options.batch_max_delay_us = 200;
  const PipelineRun run = RunPipelinedWorkload(std::move(options), 32, 4);
  ExpectPerClientOrdering(run, 32, 4);
  const CheckReport report = load::CheckRegularPerKey(run.history, {});
  EXPECT_TRUE(report.ok) << report.Summary();
}

// A lone synchronous op never fills the batch window: the max_delay
// timer (ThreadCluster's per-node timer queue) must flush it. This
// pins the timer path of the threaded runtime, not just the sim's.
TEST(MuxPipeline, BatchedLoneOpsFlushedByRuntimeTimer) {
  RegisterCluster::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.multiplex = true;
  options.n_clients = 4;
  options.batch_max_ops = 64;  // never reached by a lone op
  options.batch_max_delay_us = 500;
  RegisterCluster cluster(std::move(options));
  ASSERT_TRUE(cluster.batched());
  cluster.Start();
  for (std::size_t c = 0; c < 4; ++c) {
    ASSERT_EQ(cluster.Write(c, Val("solo" + std::to_string(c))).status,
              OpStatus::kOk);
  }
  for (std::size_t c = 0; c < 4; ++c) {
    auto read = cluster.Read(c);
    ASSERT_EQ(read.status, OpStatus::kOk);
    EXPECT_EQ(read.value, Val("solo" + std::to_string(c))) << c;
  }
  cluster.Stop();
}

// ---- Shared FLUSH rounds ---------------------------------------------

TEST(MuxPipeline, SharedFlushTcpClientsOrderedAndRegular) {
  RegisterCluster::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.use_tcp = true;
  options.multiplex = true;
  options.batch_max_ops = 16;
  options.batch_max_delay_us = 200;
  options.shared_flush = true;
  const PipelineRun run = RunPipelinedWorkload(std::move(options), 64, 5);
  ExpectPerClientOrdering(run, 64, 5);
  const CheckReport report = load::CheckRegularPerKey(run.history, {});
  EXPECT_TRUE(report.ok) << report.Summary();
}

TEST(MuxPipeline, SharedFlushInprocClientsOrderedAndRegular) {
  RegisterCluster::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.multiplex = true;
  options.batch_max_ops = 8;
  options.batch_max_delay_us = 200;
  options.shared_flush = true;
  const PipelineRun run = RunPipelinedWorkload(std::move(options), 32, 4);
  ExpectPerClientOrdering(run, 32, 4);
  const CheckReport report = load::CheckRegularPerKey(run.history, {});
  EXPECT_TRUE(report.ok) << report.Summary();
}

// Amortization on the threaded runtime: 32 clients x 4 pairs = 256 ops
// need 256 FLUSH phases, but shared windows must pack them into far
// fewer NodeFlush rounds. Measured after Stop() so the counter is
// quiescent.
TEST(MuxPipeline, SharedFlushAmortizesNodeFlushRounds) {
  RegisterCluster::Options options;
  options.config = ProtocolConfig::ForServers(6);
  options.multiplex = true;
  options.n_clients = 32;
  options.batch_max_ops = 16;
  options.batch_max_delay_us = 200;
  options.shared_flush = true;
  RegisterCluster cluster(std::move(options));
  ASSERT_TRUE(cluster.shared_flush());
  cluster.Start();
  std::atomic<int> remaining{32};
  std::mutex mutex;
  std::condition_variable done_cv;
  std::function<void(std::size_t, int)> next = [&](std::size_t c, int i) {
    if (i == 8) {
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(mutex);
        done_cv.notify_one();
      }
      return;
    }
    cluster.AsyncWrite(c, Val("v" + std::to_string(i)),
                       [&, c, i](const WriteOutcome& outcome) {
                         EXPECT_EQ(outcome.status, OpStatus::kOk);
                         next(c, i + 1);
                       });
  };
  for (std::size_t c = 0; c < 32; ++c) next(c, 0);
  {
    std::unique_lock<std::mutex> lock(mutex);
    ASSERT_TRUE(done_cv.wait_for(lock, std::chrono::seconds(60),
                                 [&] { return remaining.load() == 0; }));
  }
  cluster.Stop();
  const std::uint64_t rounds = cluster.node_flush_rounds();
  EXPECT_GE(rounds, 1u);
  // 256 ops; windows of up to 16 registers. Allow generous slack for
  // ragged windows — the point is the order of magnitude.
  EXPECT_LT(rounds, 200u) << "shared flush did not amortize";
  EXPECT_GT(cluster.cluster().protocol_cpu_ns(), 0u);
}

}  // namespace
}  // namespace sbft
