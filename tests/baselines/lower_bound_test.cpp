// Theorem 1, executed: the adversarial schedule from the lower-bound
// proof violates regularity at n = 5f, and the identical attack fails
// at n = 5f+1 — the bound is tight.
#include "baselines/lower_bound_replay.hpp"

#include <gtest/gtest.h>

namespace sbft {
namespace {

class LowerBound : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LowerBound, AttackViolatesRegularityAtFiveF) {
  ReplayOptions options;
  options.f = GetParam();
  options.extra_correct = 0;  // n = 5f: Theorem 1 says impossible
  auto result = RunTheorem1Replay(options);
  ASSERT_TRUE(result.all_ops_completed) << "replay schedule stalled";
  // The proof's signature: both reads face the same timestamp multiset,
  // so the deterministic decision elects the same timestamp twice, while
  // regularity demands w1's value from r1 and w2's value from r2 — at
  // least one read must come back wrong (a stale value or the planted
  // never-written one).
  EXPECT_TRUE(result.violated()) << result.Summary();
  const bool r1_ok = result.r1_value == Bytes{'v', '1'};
  const bool r2_ok = result.r2_value == Bytes{'v', '2'};
  EXPECT_FALSE(r1_ok && r2_ok);
}

TEST_P(LowerBound, AttackFailsAtFiveFPlusOne) {
  ReplayOptions options;
  options.f = GetParam();
  options.extra_correct = 1;  // n = 5f+1: the paper's tight bound
  auto result = RunTheorem1Replay(options);
  ASSERT_TRUE(result.all_ops_completed) << "replay schedule stalled";
  EXPECT_FALSE(result.violated()) << result.report.Summary();
  EXPECT_NE(result.r1_value, result.r2_value);  // fresh value each time
}

INSTANTIATE_TEST_SUITE_P(FSweep, LowerBound, ::testing::Values(1u, 2u, 3u),
                         [](const auto& param_info) {
                           return "f" + std::to_string(param_info.param);
                         });

TEST(LowerBound, DeterministicAcrossRuns) {
  ReplayOptions options;
  options.f = 1;
  auto a = RunTheorem1Replay(options);
  auto b = RunTheorem1Replay(options);
  EXPECT_EQ(a.r1_value, b.r1_value);
  EXPECT_EQ(a.r2_value, b.r2_value);
  EXPECT_EQ(a.violated(), b.violated());
}

}  // namespace
}  // namespace sbft
