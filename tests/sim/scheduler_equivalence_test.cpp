// Scheduler-equivalence tests: the observable trace of a seeded
// schedule must be a function of (seed, workload, fault script) only —
// never of how the caller steps the world. Step()-loop, Run() and
// RunUntil() are just different drains of the same event queue, so all
// three must produce bit-identical traces, including under adversarial
// channel state (held, degraded, scrambled) and ScheduleCall
// interleavings. This is the invariant that lets the fuzz campaign
// replay any corpus token from any driver.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/hash.hpp"
#include "sim/trace.hpp"
#include "sim/world.hpp"

namespace sbft {
namespace {

/// Order-sensitive fingerprint of everything a trace records.
std::uint64_t TraceHash(const std::vector<TraceEvent>& events) {
  std::uint64_t h = kFnvOffset;
  for (const TraceEvent& event : events) {
    h = HashCombine(h, event.time);
    h = HashCombine(h, static_cast<std::uint64_t>(event.kind));
    h = HashCombine(h, event.src);
    h = HashCombine(h, event.dst);
    h = HashCombine(h, event.frame_size);
    h = HashCombine(h, event.frame_hash);
  }
  return h;
}

/// Bounces a counter frame back to the sender until it reaches a cap,
/// and fires a timer once — enough traffic to exercise deliveries,
/// timers, and (under the fault scripts below) drops and reorderings.
class Bouncer final : public Automaton {
 public:
  Bouncer(NodeId peer, std::uint8_t rounds, bool starts)
      : peer_(peer), rounds_(rounds), starts_(starts) {}

  void OnStart(IEndpoint& endpoint) override {
    endpoint.SetTimer(3, /*timer_id=*/1);
    if (starts_) endpoint.Send(peer_, Bytes{0});
  }

  void OnFrame(NodeId from, BytesView frame, IEndpoint& endpoint) override {
    if (frame.empty()) return;  // scrambled frames may arrive empty
    const std::uint8_t count = frame[0];
    if (count < rounds_) {
      endpoint.Send(from, Bytes{static_cast<std::uint8_t>(count + 1)});
    }
  }

  void OnTimer(int /*timer_id*/, IEndpoint& endpoint) override {
    endpoint.Send(peer_, Bytes{0});
  }

 private:
  NodeId peer_;
  std::uint8_t rounds_;
  bool starts_;
};

/// A fault script mutates the world after construction (holds, timed
/// corruption via ScheduleCall, ...). It runs before the first event.
using FaultScript = std::function<void(World&)>;

std::unique_ptr<World> MakeWorld(std::uint64_t seed,
                                 const FaultScript& script) {
  auto world = std::make_unique<World>(World::Options{seed, nullptr});
  world->trace().Enable(true);
  const NodeId a = world->AddNode(std::make_unique<Bouncer>(1, 40, true));
  world->AddNode(std::make_unique<Bouncer>(a, 40, false));
  world->AddNode(std::make_unique<Bouncer>(0, 25, true));  // second pair
  if (script) script(*world);
  return world;
}

/// Drains one world per stepping mode and requires identical hashes.
void ExpectModeEquivalence(std::uint64_t seed, const FaultScript& script) {
  auto by_run = MakeWorld(seed, script);
  by_run->Run();
  const std::uint64_t run_hash = TraceHash(by_run->trace().events());

  auto by_step = MakeWorld(seed, script);
  while (by_step->Step()) {
  }
  EXPECT_EQ(TraceHash(by_step->trace().events()), run_hash);

  auto by_until = MakeWorld(seed, script);
  by_until->RunUntil([] { return false; });
  EXPECT_EQ(TraceHash(by_until->trace().events()), run_hash);

  // And a mixed drain: a few manual steps, then Run for the rest.
  auto mixed = MakeWorld(seed, script);
  for (int i = 0; i < 5; ++i) (void)mixed->Step();
  mixed->Run();
  EXPECT_EQ(TraceHash(mixed->trace().events()), run_hash);
}

TEST(SchedulerEquivalence, CleanSchedule) {
  ExpectModeEquivalence(1, {});
  ExpectModeEquivalence(99, {});
}

TEST(SchedulerEquivalence, SeedChangesTheSchedule) {
  auto w1 = MakeWorld(1, {});
  w1->Run();
  auto w2 = MakeWorld(2, {});
  w2->Run();
  EXPECT_NE(TraceHash(w1->trace().events()),
            TraceHash(w2->trace().events()));
}

TEST(SchedulerEquivalence, HeldThenReleasedChannel) {
  const FaultScript script = [](World& world) {
    world.HoldChannel(0, 1, /*capture_in_flight=*/false);
    world.ScheduleCall(50, [&world] { world.ReleaseChannel(0, 1); });
  };
  ExpectModeEquivalence(5, script);
}

TEST(SchedulerEquivalence, HoldCapturesInFlightFrames) {
  const FaultScript script = [](World& world) {
    // Freeze the channel mid-schedule, in-flight frames included, then
    // release later — the drain-and-refill path through the queue.
    world.ScheduleCall(20, [&world] {
      world.HoldChannel(1, 0, /*capture_in_flight=*/true);
    });
    world.ScheduleCall(120, [&world] { world.ReleaseChannel(1, 0); });
  };
  ExpectModeEquivalence(6, script);
}

TEST(SchedulerEquivalence, DegradedLossyUnorderedChannel) {
  const FaultScript script = [](World& world) {
    world.DegradeChannel(0, 1, /*loss=*/0.3, /*unordered=*/true);
    world.DegradeChannel(1, 0, /*loss=*/0.1, /*unordered=*/false);
  };
  ExpectModeEquivalence(7, script);
}

TEST(SchedulerEquivalence, ScrambledChannelMidSchedule) {
  const FaultScript script = [](World& world) {
    world.ScheduleCall(15, [&world] { world.ScrambleChannel(0, 1); });
    world.ScheduleCall(15, [&world] { world.ScrambleChannel(2, 0); });
  };
  ExpectModeEquivalence(8, script);
}

TEST(SchedulerEquivalence, ScheduleCallInterleavings) {
  const FaultScript script = [](World& world) {
    // Several calls landing on the same tick: their relative order is
    // fixed by seq, so every stepping mode must agree.
    for (VirtualTime delay : {30u, 30u, 30u, 31u}) {
      world.ScheduleCall(delay, [&world] {
        world.InjectGarbageFrames(0, 1, 1, /*max_frame_size=*/8);
      });
    }
  };
  ExpectModeEquivalence(9, script);
}

TEST(SchedulerEquivalence, NodeCorruptionAndStop) {
  const FaultScript script = [](World& world) {
    world.ScheduleCall(25, [&world] { world.CorruptNode(2); });
    world.ScheduleCall(60, [&world] { world.StopNode(2); });
  };
  ExpectModeEquivalence(10, script);
}

TEST(SchedulerEquivalence, RunUntilResumesWithoutPerturbingSchedule) {
  // Stop at a predicate mid-schedule, then resume — the second drain
  // must continue exactly where the first left off.
  const std::uint64_t seed = 13;
  auto reference = MakeWorld(seed, {});
  reference->Run();
  const std::uint64_t want = TraceHash(reference->trace().events());

  auto split = MakeWorld(seed, {});
  World& w = *split;
  w.RunUntil([&w] { return w.now() >= 40; });
  w.Run();
  EXPECT_EQ(TraceHash(w.trace().events()), want);
}

}  // namespace
}  // namespace sbft
