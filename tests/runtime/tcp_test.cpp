// TcpBus unit tests: framing, lazy connect, bidirectional traffic,
// oversized-frame rejection, clean shutdown.
#include "runtime/tcp.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

namespace sbft {
namespace {

struct Collector {
  void Deliver(NodeId src, NodeId dst, Bytes frame) {
    std::lock_guard<std::mutex> lock(mutex);
    received.push_back({src, dst, std::move(frame)});
  }
  struct Item {
    NodeId src;
    NodeId dst;
    Bytes frame;
  };
  std::mutex mutex;
  std::vector<Item> received;

  std::size_t Count() {
    std::lock_guard<std::mutex> lock(mutex);
    return received.size();
  }
  bool WaitFor(std::size_t n, int ms = 5000) {
    for (int waited = 0; waited < ms; ++waited) {
      if (Count() >= n) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Count() >= n;
  }
};

TEST(TcpBus, RoundTripOneFrame) {
  Collector collector;
  TcpBus bus([&](NodeId s, NodeId d, Bytes f) {
    collector.Deliver(s, d, std::move(f));
  });
  bus.AddNode(0);
  bus.AddNode(1);
  bus.Start();

  ASSERT_TRUE(bus.Send(0, 1, Bytes{1, 2, 3}));
  ASSERT_TRUE(collector.WaitFor(1));
  EXPECT_EQ(collector.received[0].src, 0u);
  EXPECT_EQ(collector.received[0].dst, 1u);
  EXPECT_EQ(collector.received[0].frame, (Bytes{1, 2, 3}));
  bus.Stop();
}

TEST(TcpBus, ManyFramesPreserveOrderPerConnection) {
  Collector collector;
  TcpBus bus([&](NodeId s, NodeId d, Bytes f) {
    collector.Deliver(s, d, std::move(f));
  });
  bus.AddNode(0);
  bus.AddNode(1);
  bus.Start();
  for (std::uint8_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(bus.Send(0, 1, Bytes{i}));
  }
  ASSERT_TRUE(collector.WaitFor(50));
  for (std::uint8_t i = 0; i < 50; ++i) {
    EXPECT_EQ(collector.received[i].frame, Bytes{i});  // TCP is FIFO
  }
  bus.Stop();
}

TEST(TcpBus, BidirectionalAndEmptyFrames) {
  Collector collector;
  TcpBus bus([&](NodeId s, NodeId d, Bytes f) {
    collector.Deliver(s, d, std::move(f));
  });
  bus.AddNode(0);
  bus.AddNode(1);
  bus.Start();
  ASSERT_TRUE(bus.Send(0, 1, Bytes{}));
  ASSERT_TRUE(bus.Send(1, 0, Bytes{9}));
  ASSERT_TRUE(collector.WaitFor(2));
  bus.Stop();
}

TEST(TcpBus, SendToUnknownNodeFails) {
  Collector collector;
  TcpBus bus([&](NodeId s, NodeId d, Bytes f) {
    collector.Deliver(s, d, std::move(f));
  });
  bus.AddNode(0);
  bus.Start();
  EXPECT_FALSE(bus.Send(0, 99, Bytes{1}));
  bus.Stop();
}

TEST(TcpBus, SendAfterStopFails) {
  Collector collector;
  TcpBus bus([&](NodeId s, NodeId d, Bytes f) {
    collector.Deliver(s, d, std::move(f));
  });
  bus.AddNode(0);
  bus.AddNode(1);
  bus.Start();
  bus.Stop();
  EXPECT_FALSE(bus.Send(0, 1, Bytes{1}));
}

TEST(TcpBus, StopIsIdempotent) {
  Collector collector;
  TcpBus bus([&](NodeId s, NodeId d, Bytes f) {
    collector.Deliver(s, d, std::move(f));
  });
  bus.AddNode(0);
  bus.Start();
  bus.Stop();
  bus.Stop();  // must not hang or crash
}

}  // namespace
}  // namespace sbft
