// Fixture: a local std::vector SHADOWS an unordered member of the same
// name, and the range-for iterates the local. The token-level linter
// (name matching only) false-positives here; the scope-aware AST walk
// must resolve `events_` to the innermost declaration and stay quiet.
// Expected: clean.

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace sbft {

class Tracer {
 public:
  std::uint64_t Checksum() {
    std::vector<std::uint64_t> events_ = SortedEvents();
    std::uint64_t sum = 0;
    for (const auto& value : events_) {
      sum = sum * 31 + value;
    }
    return sum;
  }

 private:
  std::vector<std::uint64_t> SortedEvents();

  std::unordered_map<std::uint64_t, std::uint64_t> events_;
};

}  // namespace sbft
