// Baseline protocols: correct in their own fault models, demonstrably
// broken outside them (the E5 story, unit-sized).
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "baselines/abd.hpp"
#include "baselines/bft_unbounded.hpp"
#include "baselines/naive_quorum.hpp"
#include "sim/world.hpp"

namespace sbft {
namespace {

Value Val(const std::string& text) { return Value(text.begin(), text.end()); }

// --- ABD harness -------------------------------------------------------

struct AbdRig {
  explicit AbdRig(std::size_t n, std::uint64_t seed = 1,
                  std::size_t byzantine = 0) {
    World::Options options;
    options.seed = seed;
    world = std::make_unique<World>(std::move(options));
    for (std::size_t i = 0; i < n; ++i) {
      if (i < byzantine) {
        // ABD has no Byzantine defence; reuse the Bu Byzantine which
        // speaks a different protocol — instead emulate with a corrupted
        // AbdServer frozen at a huge ts.
        auto server = std::make_unique<AbdServer>();
        server->SetState(UnboundedTs{~0ull, 99}, Val("evil"));
        servers.push_back(server.get());
        server_ids.push_back(world->AddNode(std::move(server)));
      } else {
        auto server = std::make_unique<AbdServer>();
        servers.push_back(server.get());
        server_ids.push_back(world->AddNode(std::move(server)));
      }
    }
    auto client_owner = std::make_unique<AbdClient>(server_ids, 100);
    client = client_owner.get();
    world->AddNode(std::move(client_owner));
    world->RunUntil([] { return true; }, 0);
  }

  bool Write(const Value& value) {
    bool done = false, ok = false;
    client->StartWrite(value, [&](bool k) {
      ok = k;
      done = true;
    });
    world->RunUntil([&] { return done; }, 100000);
    return done && ok;
  }
  AbdReadOutcome Read() {
    AbdReadOutcome outcome;
    bool done = false;
    client->StartRead([&](const AbdReadOutcome& o) {
      outcome = o;
      done = true;
    });
    world->RunUntil([&] { return done; }, 100000);
    return outcome;
  }

  std::unique_ptr<World> world;
  std::vector<AbdServer*> servers;
  std::vector<NodeId> server_ids;
  AbdClient* client = nullptr;
};

TEST(AbdBaseline, CrashModelWriteReadWorks) {
  AbdRig rig(5);
  ASSERT_TRUE(rig.Write(Val("abd-1")));
  auto read = rig.Read();
  ASSERT_TRUE(read.ok);
  EXPECT_EQ(read.value, Val("abd-1"));
}

TEST(AbdBaseline, SequentialWritesMonotone) {
  AbdRig rig(5);
  for (int i = 0; i < 10; ++i) {
    const Value value = Val("abd-" + std::to_string(i));
    ASSERT_TRUE(rig.Write(value));
    EXPECT_EQ(rig.Read().value, value);
  }
}

TEST(AbdBaseline, ByzantineMaxTsServerPoisonsReads) {
  // One lying server with a maximal timestamp wins the max-ts rule on
  // any read quorum containing it: ABD gives no Byzantine protection.
  AbdRig rig(5, /*seed=*/3, /*byzantine=*/1);
  ASSERT_TRUE(rig.Write(Val("honest")));
  int poisoned = 0;
  for (int i = 0; i < 10; ++i) {
    auto read = rig.Read();
    if (read.value == Val("evil")) ++poisoned;
  }
  EXPECT_GT(poisoned, 0);
}

TEST(AbdBaseline, TransientCorruptionIsPermanent) {
  // Corrupt every server: the planted near-maximal timestamps make the
  // garbage stick — no later write can exceed them.
  AbdRig rig(5, /*seed=*/4);
  ASSERT_TRUE(rig.Write(Val("before")));
  Rng rng(99);
  for (auto* server : rig.servers) {
    server->SetState(UnboundedTs{0xFFFFFFFFFFFFFF00ull +
                                     rng.NextBelow(200),
                                 7},
                     Val("junk"));
  }
  ASSERT_TRUE(rig.Write(Val("after")));  // write "completes"...
  auto read = rig.Read();
  ASSERT_TRUE(read.ok);
  EXPECT_NE(read.value, Val("after"));  // ...but is never visible
}

// --- BFT-unbounded harness ----------------------------------------------

struct BuRig {
  BuRig(std::size_t n, std::uint32_t f, std::uint64_t seed = 1,
        std::size_t byzantine = 0) {
    World::Options world_options;
    world_options.seed = seed;
    world = std::make_unique<World>(std::move(world_options));
    for (std::size_t i = 0; i < n; ++i) {
      if (i < byzantine) {
        server_ids.push_back(
            world->AddNode(std::make_unique<BuByzantineServer>(seed + i)));
        servers.push_back(nullptr);
      } else {
        auto server = std::make_unique<BuServer>();
        servers.push_back(server.get());
        server_ids.push_back(world->AddNode(std::move(server)));
      }
    }
    auto client_owner = std::make_unique<BuClient>(server_ids, f, 100);
    client = client_owner.get();
    world->AddNode(std::move(client_owner));
    world->RunUntil([] { return true; }, 0);
  }

  bool Write(const Value& value) {
    bool done = false, ok = false;
    client->StartWrite(value, [&](bool k) {
      ok = k;
      done = true;
    });
    world->RunUntil([&] { return done; }, 100000);
    return done && ok;
  }
  BuReadOutcome Read() {
    BuReadOutcome outcome;
    bool done = false;
    client->StartRead([&](const BuReadOutcome& o) {
      outcome = o;
      done = true;
    });
    world->RunUntil([&] { return done; }, 100000);
    return outcome;
  }

  std::unique_ptr<World> world;
  std::vector<BuServer*> servers;
  std::vector<NodeId> server_ids;
  BuClient* client = nullptr;
};

TEST(BuBaseline, CleanStartWorks) {
  BuRig rig(4, 1);
  ASSERT_TRUE(rig.Write(Val("bu-1")));
  auto read = rig.Read();
  ASSERT_TRUE(read.ok);
  EXPECT_EQ(read.value, Val("bu-1"));
}

TEST(BuBaseline, ToleratesByzantineFromCleanStart) {
  BuRig rig(4, 1, /*seed=*/5, /*byzantine=*/1);
  for (int i = 0; i < 8; ++i) {
    const Value value = Val("bu-" + std::to_string(i));
    ASSERT_TRUE(rig.Write(value));
    auto read = rig.Read();
    ASSERT_TRUE(read.ok) << i;
    EXPECT_EQ(read.value, value) << i;
  }
}

TEST(BuBaseline, TransientCorruptionPermanentlyBreaksReads) {
  // The unbounded-timestamp failure mode the paper's bounded labels
  // avoid: corruption plants distinct near-maximal timestamps at every
  // correct server; no value can ever again reach f+1 witnesses and the
  // saturated timestamps cannot be dominated, so reads abort forever.
  BuRig rig(4, 1, /*seed=*/6);
  ASSERT_TRUE(rig.Write(Val("before")));
  Rng rng(7);
  for (auto* server : rig.servers) {
    // Fully saturated timestamps with distinct garbage: the worst legal
    // state a transient fault can leave fixed-width timestamps in. No
    // legitimate timestamp can ever exceed it again.
    server->SetState(
        UnboundedTs{std::numeric_limits<std::uint64_t>::max(),
                    std::numeric_limits<std::uint32_t>::max()},
        RandomBytes(rng, 4));  // distinct garbage each
  }
  ASSERT_TRUE(rig.Write(Val("after")));
  int ok_reads = 0;
  for (int i = 0; i < 10; ++i) {
    auto read = rig.Read();
    if (read.ok && read.value == Val("after")) ++ok_reads;
  }
  // The register never again returns the legitimately written value.
  EXPECT_EQ(ok_reads, 0);
}

// --- Naive quorum (TM_1R) -----------------------------------------------

TEST(NqBaseline, CleanStartWorks) {
  World world;
  std::vector<NodeId> server_ids;
  const std::uint32_t n = 5, f = 1, k = 8;
  for (std::uint32_t i = 0; i < n; ++i) {
    server_ids.push_back(world.AddNode(std::make_unique<NqServer>(k)));
  }
  auto client_owner = std::make_unique<NqClient>(server_ids, f, k, 100);
  NqClient* client = client_owner.get();
  world.AddNode(std::move(client_owner));
  world.RunUntil([] { return true; }, 0);

  bool done = false, ok = false;
  client->StartWrite(Val("nq-1"), [&](bool w) {
    ok = w;
    done = true;
  });
  world.RunUntil([&] { return done; }, 100000);
  ASSERT_TRUE(done && ok);

  done = false;
  NqReadOutcome outcome;
  client->StartRead([&](const NqReadOutcome& o) {
    outcome = o;
    done = true;
  });
  world.RunUntil([&] { return done; }, 100000);
  ASSERT_TRUE(done && outcome.ok);
  EXPECT_EQ(outcome.value, Val("nq-1"));
}

}  // namespace
}  // namespace sbft
