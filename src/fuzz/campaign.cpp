#include "fuzz/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>

#include "sim/parallel.hpp"

namespace sbft::fuzz {

CampaignResult RunCampaign(const CampaignOptions& options) {
  CampaignResult result;
  Rng rng(options.seed);
  const std::size_t jobs =
      options.jobs == 0 ? HardwareJobs() : options.jobs;
  // jobs == 1 degenerates to the sequential loop (batch of one, run
  // inline): the parallel path must reproduce it bit for bit, because
  // scenarios are generated from the campaign rng sequentially either
  // way and outcomes are processed in run-index order.
  const std::size_t batch_size = jobs <= 1 ? 1 : jobs * 4;
  const auto started = std::chrono::steady_clock::now();
  const auto out_of_time = [&] {
    if (options.budget_seconds <= 0.0) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - started;
    return elapsed.count() >= options.budget_seconds;
  };

  std::size_t next_run = 0;
  while (next_run < options.runs && !out_of_time()) {
    const std::size_t batch =
        std::min(batch_size, options.runs - next_run);
    std::vector<Scenario> scenarios;
    scenarios.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b) {
      scenarios.push_back(GenerateScenario(rng, options.generator));
    }
    // The sims are independent and deterministic; ParallelMap collects
    // outcomes by index, so everything below is jobs-invariant.
    std::vector<RunOutcome> outcomes = ParallelMap<RunOutcome>(
        batch, jobs,
        [&scenarios](std::size_t b) { return RunScenario(scenarios[b]); });

    for (std::size_t b = 0; b < batch; ++b) {
      const std::size_t i = next_run + b;
      Scenario& scenario = scenarios[b];
      RunOutcome& outcome = outcomes[b];
      result.runs_executed++;
      if (!outcome.all_completed) result.stalled++;
      if (outcome.checked_reads == 0) result.vacuous++;
      if (options.out && options.verbose) {
        *options.out << "[run " << i << "] " << scenario.Summary()
                     << (outcome.violation() ? " VIOLATION" : " ok")
                     << " (checked_reads=" << outcome.checked_reads
                     << " aborted=" << outcome.reads_aborted << ")\n";
      }
      if (!outcome.violation()) continue;

      ViolationRecord record;
      record.original = scenario;
      record.shrunk = scenario;
      record.first_violation = outcome.report.violations.empty()
                                   ? std::string("(unreported)")
                                   : outcome.report.violations.front();
      record.sub_resilient = scenario.sub_resilient();
      record.run_index = i;
      if (options.do_shrink) {
        ShrinkOptions shrink;
        shrink.max_runs = options.shrink_budget;
        ShrinkResult shrunk = Shrink(scenario, shrink);
        record.shrunk = shrunk.scenario;
        record.shrink_attempts = shrunk.attempts;
        record.shrink_accepted = shrunk.accepted;
      }
      record.token = EncodeToken(record.shrunk);
      if (options.out) {
        *options.out << "[viol] run " << i << ": " << scenario.Summary()
                     << "\n  " << record.first_violation << "\n  shrunk ("
                     << record.shrink_accepted << " edits in "
                     << record.shrink_attempts
                     << " runs) -> " << record.shrunk.Summary()
                     << "\n  repro: " << record.token << "\n";
      }
      result.violations.push_back(std::move(record));
    }
    next_run += batch;
  }
  return result;
}

namespace {

Scenario BaseScenario(std::uint64_t seed, std::uint32_t f,
                      std::uint32_t extra, std::uint32_t clients) {
  Scenario s;
  s.seed = seed;
  s.f = f;
  s.extra = extra;
  s.n_clients = clients;
  s.ops_per_client = 10;
  s.write_percent = 50;
  s.max_think_time = 20;
  return s;
}

void CorruptEverything(Scenario& s) {
  for (std::uint32_t i = 0; i < s.n(); ++i) {
    bool byzantine = false;
    for (const auto& spec : s.byz_servers) byzantine |= spec.server == i;
    if (!byzantine) {
      s.faults.push_back({FaultKind::kCorruptServer, 0, i, 0, 0});
    }
  }
  for (std::uint32_t c = 0; c < s.n_clients; ++c) {
    s.faults.push_back({FaultKind::kCorruptClient, 0, c, 0, 0});
    for (std::uint32_t i = 0; i < s.n(); ++i) {
      s.faults.push_back({FaultKind::kGarbageFrames, 0, c, i, 2});
    }
  }
}

}  // namespace

std::vector<CorpusEntry> CuratedCorpus() {
  std::vector<CorpusEntry> corpus;
  const auto add = [&corpus](std::string name, std::string comment,
                             Scenario s) {
    s.Normalize();
    corpus.push_back({std::move(name), std::move(comment), std::move(s)});
  };

  add("clean-baseline",
      "n=6 f=1, no faults: the checker itself must stay quiet",
      BaseScenario(101, 1, 1, 3));

  {
    Scenario s = BaseScenario(102, 1, 1, 2);
    s.byz_servers = {{2, ByzantineStrategy::kStaleReplay}};
    add("byz-stale-replay", "lying server forever reporting initial state",
        s);
  }
  {
    Scenario s = BaseScenario(103, 1, 1, 2);
    s.byz_servers = {{0, ByzantineStrategy::kEquivocate}};
    add("byz-equivocate",
        "fabricated value attached to the legitimate newest timestamp", s);
  }
  {
    Scenario s = BaseScenario(104, 2, 1, 3);
    s.byz_servers = {{1, ByzantineStrategy::kNack},
                     {7, ByzantineStrategy::kGarbage}};
    add("byz-pair-n11", "f=2 mixed nack + garbage at n=11", s);
  }
  {
    Scenario s = BaseScenario(105, 1, 1, 2);
    s.byz_servers = {{4, ByzantineStrategy::kMute}};
    CorruptEverything(s);
    add("all-fault-cocktail-5f1",
        "n=5f+1 with every injection: all correct servers corrupted, all "
        "clients corrupted, garbage in every client channel, plus a mute "
        "Byzantine server",
        s);
  }
  {
    Scenario s = BaseScenario(106, 1, 1, 3);
    s.byz_servers = {{3, ByzantineStrategy::kStaleReplay}};
    s.slowdowns = {{0, 0, true, 90}, {0, 1, true, 90}};
    add("theorem1-near-miss",
        "the Theorem 1 schedule shape at the tight bound n=5f+1: writer "
        "slow to f+1 servers, stale-replay Byzantine — must stay regular",
        s);
  }
  {
    Scenario s = BaseScenario(107, 1, 1, 2);
    s.faults = {{FaultKind::kCorruptServer, 300, 1, 0, 0},
                {FaultKind::kCorruptServer, 300, 4, 0, 0},
                {FaultKind::kGarbageFrames, 320, 0, 2, 3}};
    s.ops_per_client = 14;
    add("midrun-burst",
        "fault burst mid-execution: the checked suffix re-anchors at the "
        "next complete write",
        s);
  }
  {
    Scenario s = BaseScenario(108, 1, 1, 2);
    s.byz_clients = {{ByzantineClientStrategy::kReadFlooder, 48}};
    add("byz-client-flooder",
        "hostile reader registering endless reads with every label", s);
  }
  {
    Scenario s = BaseScenario(109, 1, 1, 2);
    s.byz_clients = {{ByzantineClientStrategy::kGarbageSprayer, 48}};
    s.faults = {{FaultKind::kScrambleChannel, 0, 0, 0, 0},
                {FaultKind::kGarbageFrames, 0, 1, 3, 4}};
    add("garbage-storm",
        "undecodable bytes from a hostile client plus channel corruption",
        s);
  }
  {
    Scenario s = BaseScenario(110, 2, 1, 3);
    s.byz_servers = {{0, ByzantineStrategy::kStaleReplay},
                     {5, ByzantineStrategy::kEquivocate}};
    s.slowdowns = {{1, 2, true, 70}, {1, 3, true, 70}, {2, 4, false, 60}};
    s.faults = {{FaultKind::kCorruptServer, 0, 2, 0, 0},
                {FaultKind::kCorruptClient, 0, 0, 0, 0},
                {FaultKind::kGarbageFrames, 0, 2, 1, 2}};
    add("mixed-cocktail-f2",
        "f=2 everything at once: byzantine pair, directed slowdowns, "
        "initial corruption",
        s);
  }
  {
    Scenario s = BaseScenario(111, 1, 2, 4);
    s.write_percent = 80;
    s.ops_per_client = 16;
    s.byz_servers = {{6, ByzantineStrategy::kNack}};
    add("write-heavy-slack",
        "write-dominated workload at n=5f+2 with a NACKing server", s);
  }
  {
    Scenario s = BaseScenario(112, 1, 1, 4);
    s.write_percent = 25;
    s.ops_per_client = 16;
    s.delay_hi = 15;
    s.slowdowns = {{2, 0, false, 80}};
    add("read-heavy-slow-replies",
        "read-dominated workload with one server's replies to one reader "
        "delayed across write generations",
        s);
  }
  {
    Scenario s = BaseScenario(113, 1, 1, 4);
    s.mux_window = 4;
    add("mux-sharedflush-clean",
        "all clients behind one MuxClient with batched shared FLUSH "
        "rounds, no faults: per-key checker must stay quiet",
        s);
  }
  {
    Scenario s = BaseScenario(114, 1, 1, 4);
    s.mux_window = 4;
    s.mux_flush_equivocate = 1;
    s.byz_servers = {{2, ByzantineStrategy::kStaleReplay}};
    s.slowdowns = {{0, 1, true, 80}};
    add("mux-flush-equivocator",
        "Byzantine server acks the node-level FLUSH but equivocates every "
        "per-register label/scope inside the ack while stale-replaying the "
        "inner protocol; per-key regularity must survive",
        s);
  }
  {
    Scenario s = BaseScenario(115, 1, 1, 3);
    s.mux_window = 3;
    s.mux_flush_equivocate = 1;
    s.byz_servers = {{4, ByzantineStrategy::kEquivocate}};
    s.faults = {{FaultKind::kCorruptServer, 0, 1, 0, 0},
                {FaultKind::kCorruptClient, 0, 0, 0, 0},
                {FaultKind::kGarbageFrames, 0, 0, 3, 3}};
    add("mux-sharedflush-cocktail",
        "shared FLUSH rounds under initial corruption (mux client "
        "included) plus an equivocating node-flush acker",
        s);
  }
  return corpus;
}

}  // namespace sbft::fuzz
